//! Property tests for [`QuantileSketch`]: the canonical-order merge fold
//! must be bit-deterministic no matter how the parts were produced, the
//! rank error must stay within the `depth·n/k` analysis bound, answers
//! must be bracketed by the pushed sample, and the raw codec must
//! round-trip bit-exactly through arbitrary push/merge histories.

use eproc_stats::summary;
use eproc_stats::QuantileSketch;
use proptest::prelude::*;

/// Splits `data` into `parts` contiguous chunks, sketches each with a
/// seed derived from its chunk index (the engine's block-seed shape),
/// then left-folds the chunk sketches into an accumulator in canonical
/// (index) order — the only merge order the engine ever uses.
fn fold_chunks(data: &[f64], parts: usize, k: usize, base_seed: u64) -> QuantileSketch {
    let parts = parts.max(1);
    let chunk = data.len().div_ceil(parts).max(1);
    let mut acc = QuantileSketch::with_k(k, base_seed);
    for (ci, slice) in data.chunks(chunk).enumerate() {
        let mut sk = QuantileSketch::with_k(k, base_seed ^ (ci as u64 + 1).wrapping_mul(0x9e37));
        for &x in slice {
            sk.push(x);
        }
        acc.merge(&sk);
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Two canonical-order folds of the same data with the same chunking
    /// are bit-identical — and identical to building the chunk sketches
    /// in reverse order first. The fold is a pure function of the data,
    /// the chunk boundaries and the seeds; worker scheduling cannot
    /// perturb it, which is what makes sharded and resumed engine runs
    /// byte-identical to uninterrupted ones.
    #[test]
    fn canonical_fold_is_schedule_independent(
        len in 0usize..400,
        parts in 1usize..8,
        k in 4usize..32,
        seed in 0u64..1000,
    ) {
        let data: Vec<f64> = (0..len).map(|i| ((i as u64 * 7919 + seed) % 1000) as f64).collect();
        let a = fold_chunks(&data, parts, k, seed);
        let b = fold_chunks(&data, parts, k, seed);
        prop_assert_eq!(a.to_raw(), b.to_raw());

        // Build the same chunk sketches in reverse, merge in canonical
        // order: still bit-identical (construction order of the parts is
        // irrelevant; only the fold order matters).
        let parts_n = parts.max(1);
        let chunk = data.len().div_ceil(parts_n).max(1);
        let mut built: Vec<(usize, QuantileSketch)> = data
            .chunks(chunk)
            .enumerate()
            .rev()
            .map(|(ci, slice)| {
                let mut sk =
                    QuantileSketch::with_k(k, seed ^ (ci as u64 + 1).wrapping_mul(0x9e37));
                for &x in slice {
                    sk.push(x);
                }
                (ci, sk)
            })
            .collect();
        built.sort_by_key(|&(ci, _)| ci);
        let mut acc = QuantileSketch::with_k(k, seed);
        for (_, sk) in &built {
            acc.merge(sk);
        }
        prop_assert_eq!(acc.to_raw(), a.to_raw());
    }

    /// Chunk count changes *which* items survive compaction, but never
    /// the total weight, and every answer stays within the pushed
    /// sample's range.
    #[test]
    fn fold_conserves_weight_and_brackets_the_sample(
        len in 1usize..300,
        parts in 1usize..6,
        k in 4usize..24,
        seed in 0u64..1000,
    ) {
        let data: Vec<f64> = (0..len)
            .map(|i| ((i as u64 * 2654435761 + seed) % 997) as f64 - 500.0)
            .collect();
        let acc = fold_chunks(&data, parts, k, seed);
        prop_assert_eq!(acc.count(), len as u64);
        let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let est = acc.quantile(q).unwrap();
            prop_assert!((lo..=hi).contains(&est), "q={}: {} outside [{}, {}]", q, est, lo, hi);
        }
    }

    /// On a permutation of `0..n` (value == rank) the sketch's answer is
    /// within the module's advertised `depth·n/k` rank-error bound of
    /// the exact quantile, even after heavy compaction and merging.
    #[test]
    fn rank_error_stays_within_the_analysis_bound(
        len in 1usize..1500,
        parts in 1usize..6,
        stride in 1u64..50,
        seed in 0u64..1000,
    ) {
        // A coprime stride walks a full permutation of 0..len.
        let n = len as u64;
        let mut s = stride;
        while gcd(s, n.max(1)) != 1 {
            s += 1;
        }
        let data: Vec<f64> = (0..n).map(|i| ((i * s) % n) as f64).collect();
        let k = 16;
        let acc = fold_chunks(&data, parts, k, seed);
        let bound = (acc.depth() as f64) * (n as f64) / (k as f64);
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let est = acc.quantile(q).unwrap();
            // Values are 0..n, so exact quantile == interpolated rank.
            let exact = summary::quantile(&data, q).unwrap();
            prop_assert!(
                (est - exact).abs() <= bound + 1.0,
                "q={}: |{} - {}| > {}", q, est, exact, bound
            );
        }
    }

    /// Below capacity the sketch never compacts, so it answers *exactly*
    /// like the order-statistic helper on the buffered sample.
    #[test]
    fn uncompacted_sketch_is_exact(
        values in collection::vec(-1000i64..1000, 1..64),
        q_millis in 0u32..=1000,
    ) {
        let data: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        let mut sk = QuantileSketch::new(9);
        for &x in &data {
            sk.push(x);
        }
        prop_assert_eq!(sk.depth(), 1);
        let q = f64::from(q_millis) / 1000.0;
        prop_assert_eq!(
            sk.quantile(q).unwrap().to_bits(),
            summary::quantile(&data, q).unwrap().to_bits()
        );
    }

    /// `to_raw`/`from_raw` is a bit-exact round trip at any point in an
    /// arbitrary push/merge history, and the revived sketch continues
    /// identically (same coin stream) under further pushes.
    #[test]
    fn raw_round_trip_preserves_state_and_future(
        len in 0usize..500,
        extra in 0usize..100,
        k in 2usize..32,
        seed in 0u64..1000,
    ) {
        let mut sk = QuantileSketch::with_k(k, seed);
        for i in 0..len {
            sk.push(((i as u64 * 31 + seed) % 211) as f64 * 0.5 - 20.0);
        }
        let raw = sk.to_raw();
        let mut back = QuantileSketch::from_raw(raw.clone());
        prop_assert_eq!(back.to_raw(), raw);
        // The revival carries the coin-stream state: both copies must
        // stay bit-identical through the same future pushes.
        for i in 0..extra {
            let x = (i as f64) * 1.25 - 3.0;
            sk.push(x);
            back.push(x);
        }
        prop_assert_eq!(back.to_raw(), sk.to_raw());
    }
}

/// Greatest common divisor (for picking a full-cycle stride).
fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}
