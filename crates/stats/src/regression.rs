//! Least-squares fits for cover-time growth models.
//!
//! Figure 1 of the paper overlays `c · n ln n` curves on the odd-degree
//! E-process series ("The constant c used to draw the curve was determined
//! by inspection"); we determine it by least squares instead, plus a plain
//! proportional fit `y = c·x` for the flat even-degree series.

/// A fitted model with its coefficient of determination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fit {
    /// Intercept (`0` for through-origin models).
    pub intercept: f64,
    /// Slope / proportionality constant.
    pub slope: f64,
    /// Coefficient of determination `R²` relative to the mean model.
    pub r_squared: f64,
}

fn r_squared(y: &[f64], predicted: impl Fn(usize) -> f64) -> f64 {
    let mean = y.iter().sum::<f64>() / y.len() as f64;
    let ss_tot: f64 = y.iter().map(|v| (v - mean) * (v - mean)).sum();
    let ss_res: f64 = y
        .iter()
        .enumerate()
        .map(|(i, v)| (v - predicted(i)).powi(2))
        .sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Ordinary least squares `y = a + b x`.
///
/// # Panics
///
/// Panics if fewer than 2 points or mismatched lengths, or all `x` equal.
pub fn fit_linear(x: &[f64], y: &[f64]) -> Fit {
    assert_eq!(x.len(), y.len(), "x/y length mismatch");
    assert!(x.len() >= 2, "need at least two points");
    let n = x.len() as f64;
    let sx: f64 = x.iter().sum();
    let sy: f64 = y.iter().sum();
    let sxx: f64 = x.iter().map(|v| v * v).sum();
    let sxy: f64 = x.iter().zip(y).map(|(a, b)| a * b).sum();
    let denom = n * sxx - sx * sx;
    assert!(denom.abs() > 1e-300, "all x values are identical");
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    let rsq = r_squared(y, |i| intercept + slope * x[i]);
    Fit {
        intercept,
        slope,
        r_squared: rsq,
    }
}

/// Through-origin fit `y = c x` (used for the flat `C_V/n` series: fit
/// cover time proportional to `n`).
///
/// # Panics
///
/// Panics on mismatched lengths, empty input, or all-zero `x`.
pub fn fit_proportional(x: &[f64], y: &[f64]) -> Fit {
    assert_eq!(x.len(), y.len(), "x/y length mismatch");
    assert!(!x.is_empty(), "need at least one point");
    let sxx: f64 = x.iter().map(|v| v * v).sum();
    assert!(sxx > 0.0, "x must not be identically zero");
    let sxy: f64 = x.iter().zip(y).map(|(a, b)| a * b).sum();
    let c = sxy / sxx;
    let rsq = r_squared(y, |i| c * x[i]);
    Fit {
        intercept: 0.0,
        slope: c,
        r_squared: rsq,
    }
}

/// Fits `y = c · n ln n` to `(n, y)` pairs — the model the paper draws over
/// Figure 1's odd-degree series.
///
/// # Panics
///
/// Panics on mismatched lengths, empty input, or any `n < 2`.
pub fn fit_c_nlogn(ns: &[usize], y: &[f64]) -> Fit {
    assert_eq!(ns.len(), y.len(), "n/y length mismatch");
    assert!(!ns.is_empty(), "need at least one point");
    assert!(ns.iter().all(|&n| n >= 2), "n ln n model needs n >= 2");
    let x: Vec<f64> = ns.iter().map(|&n| n as f64 * (n as f64).ln()).collect();
    fit_proportional(&x, y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_linear_fit() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [3.0, 5.0, 7.0, 9.0];
        let fit = fit_linear(&x, &y);
        assert!((fit.intercept - 1.0).abs() < 1e-10);
        assert!((fit.slope - 2.0).abs() < 1e-10);
        assert!((fit.r_squared - 1.0).abs() < 1e-10);
    }

    #[test]
    fn noisy_linear_fit_r2_below_one() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.1, 3.9, 6.2, 7.8, 10.1];
        let fit = fit_linear(&x, &y);
        assert!(fit.r_squared > 0.99);
        assert!(fit.r_squared < 1.0);
        assert!((fit.slope - 2.0).abs() < 0.1);
    }

    #[test]
    fn proportional_fit_recovers_constant() {
        let x = [10.0, 20.0, 40.0];
        let y: Vec<f64> = x.iter().map(|v| 3.5 * v).collect();
        let fit = fit_proportional(&x, &y);
        assert!((fit.slope - 3.5).abs() < 1e-10);
        assert_eq!(fit.intercept, 0.0);
    }

    #[test]
    fn nlogn_fit_recovers_constant() {
        let ns = [1000usize, 2000, 4000, 8000, 16000];
        let y: Vec<f64> = ns
            .iter()
            .map(|&n| 0.93 * n as f64 * (n as f64).ln())
            .collect();
        let fit = fit_c_nlogn(&ns, &y);
        assert!((fit.slope - 0.93).abs() < 1e-9, "c = {}", fit.slope);
        assert!(fit.r_squared > 1.0 - 1e-9);
    }

    #[test]
    fn nlogn_fit_rejects_linear_data() {
        // y = 5n is poorly explained by c·n ln n over a wide range: the
        // best c underfits small n and overfits large n.
        let ns = [100usize, 1000, 10_000, 100_000];
        let y: Vec<f64> = ns.iter().map(|&n| 5.0 * n as f64).collect();
        let fit = fit_c_nlogn(&ns, &y);
        let linear_fit = {
            let x: Vec<f64> = ns.iter().map(|&n| n as f64).collect();
            fit_proportional(&x, &y)
        };
        assert!(
            linear_fit.r_squared > fit.r_squared,
            "linear model must win on linear data"
        );
    }

    #[test]
    #[should_panic(expected = "identical")]
    fn degenerate_x_rejected() {
        let _ = fit_linear(&[2.0, 2.0], &[1.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_rejected() {
        let _ = fit_proportional(&[1.0], &[1.0, 2.0]);
    }
}
