//! Bipartiteness testing via BFS 2-coloring.
//!
//! Bipartite graphs have `λ_n = -1` for the simple random walk, so the
//! paper makes the walk lazy there (§2.1); the spectral crate consults this
//! predicate for the same reason.

use crate::csr::Graph;

/// Returns a 2-coloring (`Vec` of 0/1) if the graph is bipartite, `None`
/// otherwise. Each connected component is colored with its smallest vertex
/// on side 0.
pub fn bipartition(g: &Graph) -> Option<Vec<u8>> {
    let mut color = vec![u8::MAX; g.n()];
    let mut queue = std::collections::VecDeque::new();
    for start in g.vertices() {
        if color[start] != u8::MAX {
            continue;
        }
        color[start] = 0;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for w in g.neighbors(u) {
                if color[w] == u8::MAX {
                    color[w] = 1 - color[u];
                    queue.push_back(w);
                } else if color[w] == color[u] {
                    return None;
                }
            }
        }
    }
    Some(color)
}

/// `true` if the graph has no odd cycle.
pub fn is_bipartite(g: &Graph) -> bool {
    bipartition(g).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn even_cycle_bipartite_odd_not() {
        assert!(is_bipartite(&generators::cycle(8)));
        assert!(!is_bipartite(&generators::cycle(9)));
    }

    #[test]
    fn hypercube_bipartite() {
        assert!(is_bipartite(&generators::hypercube(5)));
    }

    #[test]
    fn torus_parity() {
        assert!(is_bipartite(&generators::torus2d(4, 6)));
        assert!(!is_bipartite(&generators::torus2d(3, 4)));
    }

    #[test]
    fn petersen_not_bipartite() {
        assert!(!is_bipartite(&generators::petersen()));
    }

    #[test]
    fn coloring_is_proper() {
        let g = generators::hypercube(4);
        let color = bipartition(&g).unwrap();
        for (_, u, v) in g.edges() {
            assert_ne!(color[u], color[v]);
        }
    }

    #[test]
    fn parallel_edges_still_bipartite() {
        let g = crate::Graph::from_edges(2, &[(0, 1), (0, 1)]).unwrap();
        assert!(is_bipartite(&g));
    }
}
