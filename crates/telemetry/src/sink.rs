//! The sink trait and its structural combinators.

use crate::event::Event;

/// A consumer of telemetry [`Event`]s.
///
/// Sinks are shared by reference across the executor's worker threads,
/// so implementations must be `Sync` and take `&self`; stateful sinks
/// use interior mutability (atomics or a mutex — events are per-block,
/// never per-step, so a mutex is not on any hot path).
///
/// The contract with instrumented code: callers check [`enabled`] once
/// (per worker, per run) and skip event *construction* entirely when it
/// returns `false`. That is what makes the default [`NullSink`] free —
/// an uninstrumented run never formats a label or reads a clock.
///
/// [`enabled`]: TelemetrySink::enabled
pub trait TelemetrySink: Sync {
    /// Whether this sink wants events at all. Defaults to `true`;
    /// [`NullSink`] returns `false` so producers can skip instrumentation
    /// work wholesale.
    fn enabled(&self) -> bool {
        true
    }

    /// Consumes one event. Must be cheap and must never panic: telemetry
    /// failures (e.g. a full disk under a log writer) are recorded
    /// internally and surfaced by the sink's own finish/summary API, not
    /// by disrupting the run.
    fn emit(&self, event: &Event);
}

/// The no-op default sink: disabled, consumes nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn emit(&self, _event: &Event) {}
}

/// Fans one event stream out to several sinks (progress + log + summary
/// in one run). Disabled sinks are skipped; an empty or all-disabled tee
/// reports itself disabled, so it composes with the [`NullSink`] fast
/// path.
pub struct Tee<'a> {
    sinks: Vec<&'a dyn TelemetrySink>,
}

impl<'a> Tee<'a> {
    /// Builds a tee over `sinks` (order = delivery order).
    pub fn new(sinks: Vec<&'a dyn TelemetrySink>) -> Tee<'a> {
        Tee { sinks }
    }
}

impl TelemetrySink for Tee<'_> {
    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn emit(&self, event: &Event) {
        for sink in &self.sinks {
            if sink.enabled() {
                sink.emit(event);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct Counting(AtomicUsize);

    impl TelemetrySink for Counting {
        fn emit(&self, _event: &Event) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn probe() -> Event {
        Event {
            t_ns: 0,
            kind: EventKind::AggregationMerged {
                blocks: 1,
                cells: 1,
                agg_ns: 1,
            },
        }
    }

    #[test]
    fn null_sink_is_disabled() {
        assert!(!NullSink.enabled());
    }

    #[test]
    fn tee_fans_out_and_skips_disabled() {
        let a = Counting(AtomicUsize::new(0));
        let b = Counting(AtomicUsize::new(0));
        let null = NullSink;
        let tee = Tee::new(vec![&a, &null, &b]);
        assert!(tee.enabled());
        tee.emit(&probe());
        tee.emit(&probe());
        assert_eq!(a.0.load(Ordering::Relaxed), 2);
        assert_eq!(b.0.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn empty_tee_is_disabled() {
        assert!(!Tee::new(vec![]).enabled());
        let null = NullSink;
        assert!(!Tee::new(vec![&null as &dyn TelemetrySink]).enabled());
    }
}
