//! Cost of the telemetry layer on an end-to-end engine run.
//!
//! Three variants on an identical spec: the plain `run` entry point
//! (pre-telemetry baseline), `run_with_sink(&NullSink)` (the disabled
//! path every uninstrumented caller now takes — must be free, the
//! `enabled()` latch skips event construction and clock reads
//! wholesale), and `run_with_sink(&SummarySink)` (a live sink folding
//! every event, the per-block overhead an instrumented run pays).
//! Writes `target/experiments/BENCH_telemetry.json`; the CI gate on the
//! walk kernel itself lives in `walk_kernel.rs` — this bench prices the
//! executor-level instrumentation around it.

use eproc_bench::output_dir;
use eproc_engine::executor::{run, run_with_sink, RunOptions};
use eproc_engine::spec::{
    CapSpec, ExperimentSpec, GraphSpec, ProcessSpec, ResamplePlan, RuleSpec, Target,
};
use eproc_telemetry::{NullSink, SummarySink};
use std::time::Instant;

const SAMPLES: usize = 5;

/// Minimum seconds over `SAMPLES` timed runs — the least-interference
/// estimate when comparing variants on a shared machine.
fn best_secs<F: FnMut()>(mut f: F) -> f64 {
    (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn bench_spec() -> ExperimentSpec {
    ExperimentSpec {
        name: "telemetry-overhead".into(),
        description: "sink overhead bench".into(),
        graphs: vec![
            GraphSpec::Regular { n: 2_000, d: 3 },
            GraphSpec::Regular { n: 2_000, d: 4 },
        ],
        processes: vec![
            ProcessSpec::EProcess {
                rule: RuleSpec::Uniform,
            },
            ProcessSpec::Srw,
        ],
        trials: 6,
        target: Target::VertexCover,
        metrics: vec![],
        start: 0,
        cap: CapSpec::NLogN(5_000.0),
        resample: Some(ResamplePlan { walks_per_graph: 2 }),
    }
}

fn main() {
    let spec = bench_spec();
    let opts = RunOptions {
        base_seed: 12345,
        ..RunOptions::auto()
    };

    run(&spec, &opts).expect("warm-up run");
    let baseline_secs = best_secs(|| {
        run(&spec, &opts).expect("timed run");
    });
    let null_secs = best_secs(|| {
        run_with_sink(&spec, &opts, &NullSink).expect("timed run");
    });
    let live_secs = best_secs(|| {
        let sink = SummarySink::new();
        let report = run_with_sink(&spec, &opts, &sink).expect("timed run");
        // Consume the roll-up so the fold cannot be optimised away.
        assert_eq!(
            sink.summary().total_trials,
            report.cells.iter().map(|c| c.completed as u64).sum::<u64>()
        );
    });
    let null_overhead = null_secs / baseline_secs;
    let live_overhead = live_secs / baseline_secs;

    println!(
        "telemetry_overhead/baseline:  {:>8.2} ms (run, pre-telemetry path)",
        baseline_secs * 1e3
    );
    println!(
        "telemetry_overhead/null_sink: {:>8.2} ms ({null_overhead:.3}x, target ~1.0x)",
        null_secs * 1e3
    );
    println!(
        "telemetry_overhead/live_sink: {:>8.2} ms ({live_overhead:.3}x, SummarySink)",
        live_secs * 1e3
    );

    let json = format!(
        "{{\n  \"bench\": \"telemetry_overhead\",\n  \
         \"spec\": \"2x random cubic/quartic n=2000, 2 processes, 6 trials, resample 2\",\n  \
         \"samples\": {},\n  \
         \"threads\": {},\n  \
         \"baseline_secs\": {:.6},\n  \
         \"null_sink_secs\": {:.6},\n  \
         \"live_sink_secs\": {:.6},\n  \
         \"null_sink_overhead\": {:.4},\n  \
         \"live_sink_overhead\": {:.4}\n}}\n",
        SAMPLES, opts.threads, baseline_secs, null_secs, live_secs, null_overhead, live_overhead,
    );
    let dir = output_dir();
    std::fs::create_dir_all(&dir).expect("create output dir");
    let path = dir.join("BENCH_telemetry.json");
    std::fs::write(&path, json).expect("write snapshot");
    println!("json: {}", path.display());
}
