//! Steps/second of each walk process on a fixed random 4-regular graph,
//! dyn-dispatched vs monomorphized side by side.
//!
//! Every process is measured twice: `<name>/dyn` steps a
//! `Box<dyn WalkProcess>` through the object-safe
//! `advance(&mut dyn RngCore)` (vtable kept opaque with `black_box`, so
//! LLVM cannot devirtualize), `<name>/mono` steps the concrete process
//! through `advance_rng::<SmallRng>` — the kernel path the engine
//! executor dispatches to. The gap is what per-step dynamic dispatch
//! costs that process.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use eproc_bench::rng_for;
use eproc_core::choice::RandomWalkWithChoice;
use eproc_core::fair::LeastUsedFirst;
use eproc_core::rotor::RotorRouter;
use eproc_core::rule::UniformRule;
use eproc_core::srw::SimpleRandomWalk;
use eproc_core::{EProcess, WalkProcess};
use eproc_graphs::generators;
use rand::RngCore;

const STEPS: u64 = 10_000;

/// Benches one process both ways; `build` makes a fresh walk per sample.
fn bench_pair<W, F>(group: &mut criterion::BenchmarkGroup<'_>, name: &str, param: usize, build: F)
where
    W: WalkProcess,
    F: Fn() -> W + Copy,
{
    group.bench_function(BenchmarkId::new(format!("{name}/dyn"), param), |b| {
        b.iter(|| {
            let mut rng = rng_for(2);
            let mut w: Box<dyn WalkProcess + '_> = black_box(Box::new(build()));
            let rng_dyn: &mut dyn RngCore = black_box(&mut rng);
            for _ in 0..STEPS {
                black_box(w.advance(rng_dyn));
            }
        })
    });
    group.bench_function(BenchmarkId::new(format!("{name}/mono"), param), |b| {
        b.iter(|| {
            let mut rng = rng_for(2);
            let mut w = build();
            for _ in 0..STEPS {
                black_box(w.advance_rng(&mut rng));
            }
        })
    });
}

fn bench_walks(c: &mut Criterion) {
    let mut graph_rng = rng_for(1);
    let g = generators::connected_random_regular(10_000, 4, &mut graph_rng).unwrap();
    let mut group = c.benchmark_group("walk_step_throughput");
    group.throughput(Throughput::Elements(STEPS));
    group.sample_size(20);

    bench_pair(&mut group, "eprocess_uniform", g.n(), || {
        EProcess::new(&g, 0, UniformRule::new())
    });
    bench_pair(&mut group, "srw", g.n(), || SimpleRandomWalk::new(&g, 0));
    bench_pair(&mut group, "rotor_router", g.n(), || {
        RotorRouter::new(&g, 0)
    });
    bench_pair(&mut group, "rwc2", g.n(), || {
        RandomWalkWithChoice::new(&g, 0, 2)
    });
    bench_pair(&mut group, "least_used_first", g.n(), || {
        LeastUsedFirst::new(&g, 0)
    });
    group.finish();
}

criterion_group!(benches, bench_walks);
criterion_main!(benches);
