//! Helpers shared across the engine's integration tests. Each test file
//! pulls this in with `mod common;` — Cargo compiles `tests/common/` as
//! a module of each declaring test binary, not as a test target itself.

// Not every test binary uses every helper.
#![allow(dead_code)]

/// Strict JSON validator (subset of RFC 8259, no external crates): the
/// artifact contract is "parses anywhere", so `inf`, `NaN`, trailing
/// commas and friends must all fail here. Used to gate every JSON
/// artifact the engine emits — reports, scaling sections, telemetry
/// event logs and sidecars.
pub mod json {
    pub fn validate(s: &str) -> Result<(), String> {
        let bytes = s.as_bytes();
        let mut pos = 0usize;
        skip_ws(bytes, &mut pos);
        value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(())
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
        match b.get(*pos) {
            Some(b'{') => object(b, pos),
            Some(b'[') => array(b, pos),
            Some(b'"') => string(b, pos),
            Some(b't') => literal(b, pos, b"true"),
            Some(b'f') => literal(b, pos, b"false"),
            Some(b'n') => literal(b, pos, b"null"),
            Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
            other => Err(format!("unexpected {other:?} at byte {pos}")),
        }
    }

    fn literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
        if b[*pos..].starts_with(lit) {
            *pos += lit.len();
            Ok(())
        } else {
            Err(format!("bad literal at byte {pos} (inf/NaN are not JSON)"))
        }
    }

    fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
        let start = *pos;
        if b.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        let digits = |b: &[u8], pos: &mut usize| -> usize {
            let s = *pos;
            while b.get(*pos).is_some_and(u8::is_ascii_digit) {
                *pos += 1;
            }
            *pos - s
        };
        if digits(b, pos) == 0 {
            return Err(format!("bad number at byte {start} (inf/NaN are not JSON)"));
        }
        if b.get(*pos) == Some(&b'.') {
            *pos += 1;
            if digits(b, pos) == 0 {
                return Err(format!("bad fraction at byte {start}"));
            }
        }
        if matches!(b.get(*pos), Some(b'e' | b'E')) {
            *pos += 1;
            if matches!(b.get(*pos), Some(b'+' | b'-')) {
                *pos += 1;
            }
            if digits(b, pos) == 0 {
                return Err(format!("bad exponent at byte {start}"));
            }
        }
        Ok(())
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
        *pos += 1; // opening quote
        loop {
            match b.get(*pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                        Some(b'u') => {
                            if b.len() < *pos + 5
                                || !b[*pos + 1..*pos + 5].iter().all(u8::is_ascii_hexdigit)
                            {
                                return Err(format!("bad \\u escape at byte {pos}"));
                            }
                            *pos += 5;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                }
                Some(c) if *c < 0x20 => return Err("raw control char in string".into()),
                Some(_) => *pos += 1,
            }
        }
    }

    fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
        *pos += 1;
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(());
        }
        loop {
            skip_ws(b, pos);
            if b.get(*pos) != Some(&b'"') {
                return Err(format!("expected key at byte {pos}"));
            }
            string(b, pos)?;
            skip_ws(b, pos);
            if b.get(*pos) != Some(&b':') {
                return Err(format!("expected ':' at byte {pos}"));
            }
            *pos += 1;
            skip_ws(b, pos);
            value(b, pos)?;
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(());
                }
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }

    fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
        *pos += 1;
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(());
        }
        loop {
            skip_ws(b, pos);
            value(b, pos)?;
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(());
                }
                other => return Err(format!("expected ',' or ']', got {other:?}")),
            }
        }
    }

    #[test]
    fn validator_rejects_non_json() {
        assert!(validate("{\"a\": 1}").is_ok());
        assert!(validate("{\"a\": [1.5e-3, null, true]}").is_ok());
        assert!(validate("{\"a\": inf}").is_err());
        assert!(validate("{\"a\": -inf}").is_err());
        assert!(validate("{\"a\": NaN}").is_err());
        assert!(validate("{\"a\": 1,}").is_err());
        assert!(validate("{\"a\": 1} x").is_err());
        assert!(validate("{\"a\" 1}").is_err());
    }
}
