//! Network patrolling with unvisited-edge preference.
//!
//! The rotor-router literature the paper builds on (Yanovski–Wagner–
//! Bruckstein, "a distributed ant algorithm for efficiently patrolling a
//! network") frames edge cover as *patrolling*: every link of a network
//! must be inspected as often as possible. This example patrols a
//! 4-regular torus "data-center fabric" with three explorers — the
//! E-process, a plain random walk, and the Least-Used-First fair explorer
//! — and reports two patrol metrics over a fixed step budget:
//!
//! * time to first full sweep (edge cover time), and
//! * worst edge staleness afterwards (longest time any link went
//!   uninspected).
//!
//! Run with: `cargo run --release --example network_patrol`

use eproc::core::fair::LeastUsedFirst;
use eproc::core::rule::UniformRule;
use eproc::core::srw::SimpleRandomWalk;
use eproc::core::{EProcess, WalkProcess};
use eproc::graphs::generators;
use eproc::graphs::Graph;
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

struct PatrolReport {
    first_sweep: Option<u64>,
    worst_staleness: u64,
}

fn patrol<W: WalkProcess>(
    walk: &mut W,
    g: &Graph,
    budget: u64,
    rng: &mut dyn RngCore,
) -> PatrolReport {
    let mut last_seen = vec![0u64; g.m()];
    let mut seen = vec![false; g.m()];
    let mut remaining = g.m();
    let mut first_sweep = None;
    let mut worst = 0u64;
    for t in 1..=budget {
        let step = walk.advance(rng);
        if let Some(e) = step.edge {
            worst = worst.max(t - last_seen[e]);
            last_seen[e] = t;
            if !seen[e] {
                seen[e] = true;
                remaining -= 1;
                if remaining == 0 && first_sweep.is_none() {
                    first_sweep = Some(t);
                }
            }
        }
    }
    for &seen in &last_seen {
        worst = worst.max(budget - seen);
    }
    PatrolReport {
        first_sweep,
        worst_staleness: worst,
    }
}

fn main() {
    let side = 48;
    let g = generators::torus2d(side, side);
    let budget = 40 * g.m() as u64;
    println!(
        "Patrolling a {side}x{side} torus fabric: n = {}, m = {}",
        g.n(),
        g.m()
    );
    println!(
        "step budget = {budget} ({}x the number of links)\n",
        budget / g.m() as u64
    );
    let mut rng = SmallRng::seed_from_u64(2024);

    let report = |name: &str, r: PatrolReport| {
        println!("{name}:");
        match r.first_sweep {
            Some(t) => println!(
                "  first full sweep  : {t} steps ({:.2} x m)",
                t as f64 / g.m() as f64
            ),
            None => println!("  first full sweep  : not within budget"),
        }
        println!(
            "  worst staleness   : {} steps ({:.1} x m)\n",
            r.worst_staleness,
            r.worst_staleness as f64 / g.m() as f64
        );
    };

    let mut e_walk = EProcess::new(&g, 0, UniformRule::new());
    report(
        "E-process (prefers unvisited edges)",
        patrol(&mut e_walk, &g, budget, &mut rng),
    );

    let mut srw = SimpleRandomWalk::new(&g, 0);
    report("Simple random walk", patrol(&mut srw, &g, budget, &mut rng));

    let mut luf = LeastUsedFirst::new(&g, 0);
    report(
        "Least-Used-First (locally fair)",
        patrol(&mut luf, &g, budget, &mut rng),
    );

    println!("The E-process sweeps once almost perfectly (CE ≈ m, eq. 3) and then");
    println!("behaves like a random walk; Least-Used-First keeps patrolling fair");
    println!("forever (Cooper et al. [5]); the SRW needs Θ(m log m) per sweep.");
}
