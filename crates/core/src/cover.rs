//! Cover-time measurement for any [`WalkProcess`].
//!
//! Since the single-pass refactor these entry points are thin wrappers
//! over the [`crate::observe`] pipeline: [`run_cover`] attaches a
//! [`CoverObserver`] and [`blanket_time`] a
//! [`crate::observe::BlanketObserver`] to the shared
//! [`run_observed`] driver, so vertex cover time `C_V`, edge cover time
//! `C_E` and blanket time are all measured uniformly — and composably —
//! for the E-process, SRW, rotor-router, RWC(d) and the locally fair
//! explorers. Callers wanting several metrics from one trajectory should
//! use [`run_observed`] directly.

use crate::observe::{run_observed, BlanketObserver, CoverObserver, StopWhen};
use crate::process::WalkProcess;
use eproc_graphs::{Graph, Vertex};
use rand::RngCore;
use std::fmt;

/// Error from a cover/blanket measurement entry point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CoverError {
    /// Blanket parameter `δ` outside `(0, 1)`.
    InvalidDelta(f64),
}

impl fmt::Display for CoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoverError::InvalidDelta(delta) => {
                write!(f, "blanket delta must be in (0,1), got {delta}")
            }
        }
    }
}

impl std::error::Error for CoverError {}

/// What to wait for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoverTarget {
    /// Stop when every vertex has been visited.
    Vertices,
    /// Stop when every edge has been traversed.
    Edges,
    /// Stop when both vertices and edges are covered.
    Both,
}

/// Everything measured during a capped cover run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoverRun {
    /// Steps actually taken (= the cap if the target was not reached).
    pub steps: u64,
    /// Step at which the last vertex was first visited, if vertex cover
    /// completed within the cap.
    pub steps_to_vertex_cover: Option<u64>,
    /// Step at which the last edge was first traversed, if edge cover
    /// completed within the cap.
    pub steps_to_edge_cover: Option<u64>,
    /// Blue (unvisited-edge) transitions observed.
    pub blue_steps: u64,
    /// Red transitions observed.
    pub red_steps: u64,
    /// Distinct vertices visited (including the start).
    pub vertices_visited: usize,
    /// Distinct edges traversed.
    pub edges_visited: usize,
    /// Where the walk stopped.
    pub final_vertex: Vertex,
}

/// Runs `walk` until `target` is covered or `max_steps` elapse.
///
/// The walk may have already taken steps; counters here are relative to
/// this call (fresh bitmaps, step counts starting at the walk's current
/// position, which counts as visited).
///
/// Thin wrapper: allocates a fresh [`CoverObserver`] and delegates to
/// [`run_cover_with`]. Repeated-measurement loops should hold one
/// observer and call [`run_cover_with`] to reuse its bitmaps.
pub fn run_cover<W: WalkProcess + ?Sized>(
    walk: &mut W,
    target: CoverTarget,
    max_steps: u64,
    rng: &mut dyn RngCore,
) -> CoverRun {
    let mut observer = CoverObserver::new(target);
    run_cover_with(walk, &mut observer, max_steps, rng)
}

/// Like [`run_cover`], but reusing `observer`'s scratch bitmaps (they are
/// re-armed, not reallocated). The observer's target decides the stop
/// condition.
pub fn run_cover_with<W: WalkProcess + ?Sized>(
    walk: &mut W,
    observer: &mut CoverObserver,
    max_steps: u64,
    mut rng: &mut dyn RngCore,
) -> CoverRun {
    let mut walk = walk;
    let run = run_observed(
        &mut walk,
        &mut (&mut *observer,),
        StopWhen::AllSatisfied,
        max_steps,
        &mut rng,
    );
    let m = observer.cover_metrics();
    CoverRun {
        steps: run.steps,
        steps_to_vertex_cover: m.steps_to_vertex_cover,
        steps_to_edge_cover: m.steps_to_edge_cover,
        blue_steps: m.blue_steps,
        red_steps: m.red_steps,
        vertices_visited: m.vertices_visited,
        edges_visited: m.edges_visited,
        final_vertex: run.final_vertex,
    }
}

/// Result of a completed vertex cover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VertexCover {
    /// Steps until every vertex had been visited.
    pub steps: u64,
    /// The vertex visited last.
    pub last_vertex: Vertex,
}

/// A generous default step cap: `4 n³ + 10⁶`, above the `(4/27)n³(1+o(1))`
/// worst-case expected cover time of any connected graph, so a capped-out
/// run on a connected graph signals a bug rather than bad luck.
pub fn default_step_cap(g: &Graph) -> u64 {
    let n = g.n() as u64;
    4 * n * n * n + 1_000_000
}

/// Runs `walk` to vertex cover with the [`default_step_cap`]; `None` if the
/// cap was hit (disconnected graph, or a deterministic walk trapped in a
/// cycle).
pub fn run_to_vertex_cover<W: WalkProcess + ?Sized>(
    walk: &mut W,
    g: &Graph,
    rng: &mut dyn RngCore,
) -> Option<VertexCover> {
    let run = run_cover(walk, CoverTarget::Vertices, default_step_cap(g), rng);
    run.steps_to_vertex_cover.map(|steps| VertexCover {
        steps,
        last_vertex: run.final_vertex,
    })
}

/// Runs `walk` to edge cover with the [`default_step_cap`]; returns the
/// step count, or `None` if the cap was hit.
pub fn run_to_edge_cover<W: WalkProcess + ?Sized>(
    walk: &mut W,
    g: &Graph,
    rng: &mut dyn RngCore,
) -> Option<u64> {
    run_cover(walk, CoverTarget::Edges, default_step_cap(g), rng).steps_to_edge_cover
}

/// Repeats a cover measurement: `make_walk(run_index)` builds a fresh
/// process for each run; returns the vector of cover step counts (runs
/// that hit `max_steps` are dropped — the caller can compare lengths).
pub fn repeat_cover<'g, W, F>(
    mut make_walk: F,
    target: CoverTarget,
    runs: usize,
    max_steps: u64,
    rng: &mut dyn RngCore,
) -> Vec<u64>
where
    W: WalkProcess + 'g,
    F: FnMut(usize) -> W,
{
    let mut out = Vec::with_capacity(runs);
    // One observer for the whole ensemble: the per-trial bitmaps are
    // re-armed, not reallocated.
    let mut observer = CoverObserver::new(target);
    for i in 0..runs {
        let mut walk = make_walk(i);
        let run = run_cover_with(&mut walk, &mut observer, max_steps, rng);
        let steps = match target {
            CoverTarget::Vertices => run.steps_to_vertex_cover,
            CoverTarget::Edges => run.steps_to_edge_cover,
            CoverTarget::Both => run
                .steps_to_vertex_cover
                .and(run.steps_to_edge_cover)
                .map(|_| run.steps),
        };
        if let Some(s) = steps {
            out.push(s);
        }
    }
    out
}

/// Estimates the paper's cover time `C_V(Y, G) = max_v C_v`: mean steps
/// to vertex cover from *every* start vertex (`runs_per_start` repetitions
/// each), returning `(worst_start, worst_mean)`.
///
/// `O(n · runs · CV)` — intended for small graphs where the max-over-starts
/// definition is checked against single-start measurements.
///
/// # Panics
///
/// Panics if the graph is empty or some run fails to cover within
/// `max_steps` (choose the cap generously).
pub fn worst_start_cover<'g, W, F>(
    g: &Graph,
    mut make_walk: F,
    runs_per_start: usize,
    max_steps: u64,
    rng: &mut dyn RngCore,
) -> (Vertex, f64)
where
    W: WalkProcess + 'g,
    F: FnMut(Vertex, usize) -> W,
{
    assert!(g.n() > 0, "empty graph has no cover time");
    let mut worst = (0, f64::NEG_INFINITY);
    let mut observer = CoverObserver::new(CoverTarget::Vertices);
    for start in g.vertices() {
        let mut total = 0u64;
        for rep in 0..runs_per_start {
            let mut walk = make_walk(start, rep);
            let run = run_cover_with(&mut walk, &mut observer, max_steps, rng);
            total += run
                .steps_to_vertex_cover
                .expect("run must cover within max_steps; raise the cap");
        }
        let mean = total as f64 / runs_per_start as f64;
        if mean > worst.1 {
            worst = (start, mean);
        }
    }
    worst
}

/// Measures the blanket time `τ_bl(δ)`: the first step `t` at which every
/// vertex `v` has been visited at least `δ π_v t` times (Ding–Lee–Peres,
/// §1 of the paper). The condition is checked every `g.n()` steps, so the
/// result has additive granularity `n`. `Ok(None)` if not reached within
/// `max_steps`.
///
/// Thin wrapper over a [`BlanketObserver`] on the [`run_observed`]
/// driver.
///
/// # Errors
///
/// Returns [`CoverError::InvalidDelta`] if `delta` is not in `(0, 1)`.
pub fn blanket_time<W: WalkProcess + ?Sized>(
    walk: &mut W,
    delta: f64,
    max_steps: u64,
    mut rng: &mut dyn RngCore,
) -> Result<Option<u64>, CoverError> {
    let mut observer = BlanketObserver::new(delta)?;
    let mut walk = walk;
    run_observed(
        &mut walk,
        &mut (&mut observer,),
        StopWhen::AllSatisfied,
        max_steps,
        &mut rng,
    );
    Ok(observer.steps_to_blanket())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eprocess::rule::UniformRule;
    use crate::eprocess::EProcess;
    use crate::rotor::RotorRouter;
    use crate::srw::SimpleRandomWalk;
    use eproc_graphs::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn eprocess_covers_cycle_in_exactly_n_minus_1_vertices() {
        let g = generators::cycle(20);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut w = EProcess::new(&g, 0, UniformRule::new());
        let cover = run_to_vertex_cover(&mut w, &g, &mut rng).unwrap();
        // The blue walk goes straight around: n - 1 steps to see all.
        assert_eq!(cover.steps, 19);
    }

    #[test]
    fn eprocess_edge_cover_on_cycle_is_m() {
        let g = generators::cycle(15);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut w = EProcess::new(&g, 0, UniformRule::new());
        assert_eq!(run_to_edge_cover(&mut w, &g, &mut rng), Some(15));
    }

    #[test]
    fn edge_cover_sandwich_eq3() {
        // m <= CE(E-process) <= m + CV(SRW): check the lower half per-run
        // (the upper half holds in expectation; see table_edge_cover).
        let g = generators::torus2d(5, 4);
        let mut rng = SmallRng::seed_from_u64(3);
        for start in [0, 7] {
            let mut w = EProcess::new(&g, start, UniformRule::new());
            let ce = run_to_edge_cover(&mut w, &g, &mut rng).unwrap();
            assert!(ce >= g.m() as u64);
        }
    }

    #[test]
    fn cover_run_counts_are_consistent() {
        let g = generators::torus2d(4, 4);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut w = EProcess::new(&g, 0, UniformRule::new());
        let run = run_cover(&mut w, CoverTarget::Both, 1_000_000, &mut rng);
        assert_eq!(run.blue_steps + run.red_steps, run.steps);
        assert_eq!(run.vertices_visited, g.n());
        assert_eq!(run.edges_visited, g.m());
        assert!(run.steps_to_vertex_cover.unwrap() <= run.steps_to_edge_cover.unwrap());
        assert_eq!(run.final_vertex, w.current());
    }

    #[test]
    fn cap_is_respected() {
        let g = generators::torus2d(10, 10);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut w = SimpleRandomWalk::new(&g, 0);
        let run = run_cover(&mut w, CoverTarget::Vertices, 10, &mut rng);
        assert_eq!(run.steps, 10);
        assert!(run.steps_to_vertex_cover.is_none());
        assert!(run.vertices_visited <= 11);
    }

    #[test]
    fn disconnected_graph_returns_none() {
        let g =
            eproc_graphs::Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])
                .unwrap();
        let mut rng = SmallRng::seed_from_u64(6);
        let mut w = SimpleRandomWalk::new(&g, 0);
        let run = run_cover(&mut w, CoverTarget::Vertices, 50_000, &mut rng);
        assert!(run.steps_to_vertex_cover.is_none());
        assert_eq!(run.vertices_visited, 3);
    }

    #[test]
    fn rotor_cover_via_harness() {
        let g = generators::complete(5);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut w = RotorRouter::new(&g, 0);
        let cover = run_to_vertex_cover(&mut w, &g, &mut rng).unwrap();
        assert!(cover.steps >= (g.n() - 1) as u64);
        // Rotor-router covers within O(mD) = O(m) here.
        assert!(cover.steps <= (2 * g.m() * 2) as u64);
    }

    #[test]
    fn repeat_cover_collects_runs() {
        let g = generators::cycle(10);
        let mut rng = SmallRng::seed_from_u64(8);
        let runs = repeat_cover(
            |_| EProcess::new(&g, 0, UniformRule::new()),
            CoverTarget::Vertices,
            5,
            100_000,
            &mut rng,
        );
        assert_eq!(runs, vec![9, 9, 9, 9, 9]);
    }

    #[test]
    fn blanket_time_on_complete_graph() {
        let g = generators::complete(8);
        let mut rng = SmallRng::seed_from_u64(9);
        let mut w = SimpleRandomWalk::new(&g, 0);
        let t = blanket_time(&mut w, 0.3, 1_000_000, &mut rng)
            .expect("valid delta")
            .expect("blanket reached");
        // K8 blanket time is a small multiple of n log n.
        assert!(t < 10_000, "blanket time {t} too large for K8");
    }

    #[test]
    fn blanket_rejects_bad_delta() {
        let g = generators::complete(4);
        let mut rng = SmallRng::seed_from_u64(10);
        let mut w = SimpleRandomWalk::new(&g, 0);
        for delta in [1.5, 0.0, 1.0, -0.2] {
            assert_eq!(
                blanket_time(&mut w, delta, 100, &mut rng),
                Err(CoverError::InvalidDelta(delta)),
            );
        }
        let msg = CoverError::InvalidDelta(1.5).to_string();
        assert!(msg.contains("delta") && msg.contains("1.5"));
    }

    #[test]
    fn worst_start_on_path_is_an_endpoint_region() {
        // For the SRW on a path, covering from an endpoint requires one
        // full crossing (≈ n²) while the middle needs ≈ (9/8)·(n/?)… —
        // empirically the *middle* is worst (both halves must be swept).
        // We only assert the definitional property: the reported worst
        // mean dominates every sampled single-start mean.
        let g = generators::path(9);
        let mut rng = SmallRng::seed_from_u64(11);
        let (_, worst_mean) = worst_start_cover(
            &g,
            |start, _| SimpleRandomWalk::new(&g, start),
            20,
            10_000_000,
            &mut rng,
        );
        for probe in [0, 4, 8] {
            let (mean, done) = {
                let mut total = 0u64;
                let mut finished = 0;
                for _ in 0..20 {
                    let mut w = SimpleRandomWalk::new(&g, probe);
                    let run = run_cover(&mut w, CoverTarget::Vertices, 10_000_000, &mut rng);
                    if let Some(s) = run.steps_to_vertex_cover {
                        total += s;
                        finished += 1;
                    }
                }
                (total as f64 / finished as f64, finished)
            };
            assert_eq!(done, 20);
            // Generous sampling slack: the max over starts cannot be far
            // below any single start's mean.
            assert!(
                worst_mean * 1.5 >= mean,
                "worst {worst_mean} vs probe {probe}: {mean}"
            );
        }
    }

    #[test]
    fn worst_start_eprocess_on_cycle_is_uniform() {
        // On a cycle every start is equivalent: worst mean equals n - 1.
        let g = generators::cycle(12);
        let mut rng = SmallRng::seed_from_u64(12);
        let (_, worst_mean) = worst_start_cover(
            &g,
            |start, _| EProcess::new(&g, start, UniformRule::new()),
            3,
            1_000_000,
            &mut rng,
        );
        assert_eq!(worst_mean, 11.0);
    }

    #[test]
    fn vertex_cover_beats_lower_bound_n_minus_1() {
        // No walk-based process covers n vertices in fewer than n-1 steps.
        let g = generators::torus2d(4, 4);
        for seed in 0..5 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut w = EProcess::new(&g, 0, UniformRule::new());
            let c = run_to_vertex_cover(&mut w, &g, &mut rng).unwrap();
            assert!(c.steps >= (g.n() - 1) as u64);
        }
    }
}
