//! Graph conductance and the Cheeger sandwich (eq. 19 of the paper).
//!
//! `Φ(G) = min_{d(X) ≤ m} e(X, X̄) / d(X)`, and
//! `1 − 2Φ ≤ λ_2 ≤ 1 − Φ²/2`.

use eproc_graphs::Graph;

/// Exact conductance by exhaustive enumeration of all vertex subsets.
///
/// Requires `2 <= n <= 24` (cost `O(2^n · n)` using bitmask adjacency);
/// this is a test oracle, not a production algorithm. Parallel edges are
/// counted with multiplicity.
///
/// # Errors
///
/// `Err` with a message if `n` is out of range or the graph has no edges.
pub fn conductance_exact(g: &Graph) -> Result<f64, String> {
    let n = g.n();
    if !(2..=24).contains(&n) {
        return Err(format!("exact conductance requires 2 <= n <= 24, got {n}"));
    }
    if g.m() == 0 {
        return Err("conductance undefined for an edgeless graph".into());
    }
    let m = g.m() as f64;
    let degrees: Vec<f64> = g.vertices().map(|v| g.degree(v) as f64).collect();
    // Edge endpoint masks for boundary counting with multiplicity.
    let edge_masks: Vec<(u32, u32)> = g.edges().map(|(_, u, v)| (1u32 << u, 1u32 << v)).collect();
    let mut best = f64::INFINITY;
    for mask in 1u32..(1u32 << n) - 1 {
        let d_x: f64 = (0..n)
            .filter(|&v| mask & (1 << v) != 0)
            .map(|v| degrees[v])
            .sum();
        if d_x > m {
            continue; // the definition minimises over d(X) ≤ m(G)
        }
        let boundary = edge_masks
            .iter()
            .filter(|&&(mu, mv)| (mask & mu != 0) != (mask & mv != 0))
            .count() as f64;
        let phi = boundary / d_x;
        if phi < best {
            best = phi;
        }
    }
    Ok(best)
}

/// Verifies the Cheeger sandwich `1 − 2Φ ≤ λ_2 ≤ 1 − Φ²/2` given the exact
/// conductance and `λ_2`; returns the two slack values
/// `(λ_2 − (1 − 2Φ), (1 − Φ²/2) − λ_2)`, both nonnegative when the
/// inequality holds.
pub fn cheeger_slack(phi: f64, lambda_2: f64) -> (f64, f64) {
    (
        lambda_2 - (1.0 - 2.0 * phi),
        (1.0 - phi * phi / 2.0) - lambda_2,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::SymMatrix;
    use eproc_graphs::generators;

    #[test]
    fn complete_graph_conductance() {
        // K4: the minimising cut is a balanced bisection:
        // e(X, X̄) = 4, d(X) = 6 → Φ = 2/3.
        let g = generators::complete(4);
        let phi = conductance_exact(&g).unwrap();
        assert!((phi - 2.0 / 3.0).abs() < 1e-12, "phi = {phi}");
    }

    #[test]
    fn cycle_conductance() {
        // C_n: cut an arc of n/2 vertices: 2 boundary edges, d(X) = n.
        let n = 10;
        let g = generators::cycle(n);
        let phi = conductance_exact(&g).unwrap();
        assert!((phi - 2.0 / n as f64).abs() < 1e-12, "phi = {phi}");
    }

    #[test]
    fn barbell_conductance_is_small() {
        let g = generators::barbell(5, 2);
        let phi = conductance_exact(&g).unwrap();
        // Cutting the bridge: 1 boundary edge, d(X) ≈ half the degree.
        assert!(phi < 0.06, "barbell should have a bottleneck, phi = {phi}");
    }

    #[test]
    fn cheeger_sandwich_on_named_graphs() {
        for g in [
            generators::cycle(9),
            generators::complete(5),
            generators::petersen(),
            generators::barbell(4, 1),
            generators::torus2d(3, 4),
        ] {
            let phi = conductance_exact(&g).unwrap();
            let lambda_2 = SymMatrix::from_graph(&g, false).eigenvalues()[1];
            let (lo, hi) = cheeger_slack(phi, lambda_2);
            assert!(
                lo >= -1e-9,
                "lower Cheeger violated: λ2 = {lambda_2}, Φ = {phi}"
            );
            assert!(
                hi >= -1e-9,
                "upper Cheeger violated: λ2 = {lambda_2}, Φ = {phi}"
            );
        }
    }

    #[test]
    fn size_limits() {
        assert!(conductance_exact(&generators::cycle(30)).is_err());
        let g = eproc_graphs::Graph::from_edges(1, &[]).unwrap();
        assert!(conductance_exact(&g).is_err());
    }

    #[test]
    fn parallel_edges_increase_conductance() {
        let single = eproc_graphs::Graph::from_edges(2, &[(0, 1)]).unwrap();
        let double = eproc_graphs::Graph::from_edges(2, &[(0, 1), (0, 1)]).unwrap();
        // Both have Φ = 1 (cut the only vertex pair: boundary = d(X)).
        assert!((conductance_exact(&single).unwrap() - 1.0).abs() < 1e-12);
        assert!((conductance_exact(&double).unwrap() - 1.0).abs() < 1e-12);
    }
}
