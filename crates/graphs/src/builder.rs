//! Incremental graph construction.

use crate::csr::{Graph, Vertex};
use crate::error::GraphError;

/// Incremental builder for [`Graph`].
///
/// The builder validates eagerly: adding a self-loop or an out-of-range
/// endpoint fails immediately rather than at [`GraphBuilder::build`] time.
///
/// # Example
///
/// ```
/// use eproc_graphs::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1)?;
/// b.add_edge(1, 2)?;
/// let g = b.build()?;
/// assert_eq!(g.m(), 2);
/// # Ok::<(), eproc_graphs::GraphError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(Vertex, Vertex)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `n` vertices.
    pub fn new(n: usize) -> GraphBuilder {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Creates a builder with capacity for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> GraphBuilder {
        GraphBuilder {
            n,
            edges: Vec::with_capacity(m),
        }
    }

    /// Number of vertices the built graph will have.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges added so far.
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Adds an undirected edge `{u, v}` and returns its future edge id.
    ///
    /// # Errors
    ///
    /// [`GraphError::SelfLoop`] if `u == v`;
    /// [`GraphError::VertexOutOfRange`] if either endpoint is `>= n`.
    pub fn add_edge(&mut self, u: Vertex, v: Vertex) -> Result<usize, GraphError> {
        if u >= self.n {
            return Err(GraphError::VertexOutOfRange {
                vertex: u,
                n: self.n,
            });
        }
        if v >= self.n {
            return Err(GraphError::VertexOutOfRange {
                vertex: v,
                n: self.n,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        self.edges.push((u, v));
        Ok(self.edges.len() - 1)
    }

    /// Adds every edge from an iterator; stops at the first error.
    ///
    /// # Errors
    ///
    /// Same as [`GraphBuilder::add_edge`].
    pub fn add_edges<I>(&mut self, edges: I) -> Result<(), GraphError>
    where
        I: IntoIterator<Item = (Vertex, Vertex)>,
    {
        for (u, v) in edges {
            self.add_edge(u, v)?;
        }
        Ok(())
    }

    /// Consumes the builder and produces the graph.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] from [`Graph::from_edges`] (cannot occur if
    /// all edges were added through the validating methods).
    pub fn build(self) -> Result<Graph, GraphError> {
        Graph::from_edges(self.n, &self.edges)
    }
}

/// Builds a graph from adjacency lists (`adj[v]` = neighbors of `v`).
///
/// Every undirected edge must appear in both endpoint lists; the function
/// pairs them up and errors if the lists are asymmetric.
///
/// # Errors
///
/// [`GraphError::InfeasibleDegrees`] if the adjacency lists are not
/// symmetric; [`GraphError::SelfLoop`] / [`GraphError::VertexOutOfRange`] on
/// malformed entries.
///
/// # Example
///
/// ```
/// use eproc_graphs::builder::from_adjacency_lists;
///
/// // Path 0 - 1 - 2.
/// let g = from_adjacency_lists(&[vec![1], vec![0, 2], vec![1]])?;
/// assert_eq!(g.m(), 2);
/// # Ok::<(), eproc_graphs::GraphError>(())
/// ```
pub fn from_adjacency_lists(adj: &[Vec<Vertex>]) -> Result<Graph, GraphError> {
    let n = adj.len();
    let mut edges = Vec::new();
    // Count directed occurrences; each undirected edge must appear twice.
    let mut mult = std::collections::HashMap::new();
    for (u, neighbors) in adj.iter().enumerate() {
        for &v in neighbors {
            if v >= n {
                return Err(GraphError::VertexOutOfRange { vertex: v, n });
            }
            if v == u {
                return Err(GraphError::SelfLoop { vertex: u });
            }
            let key = if u < v { (u, v) } else { (v, u) };
            *mult.entry(key).or_insert(0usize) += 1;
        }
    }
    let mut keys: Vec<_> = mult.keys().copied().collect();
    keys.sort_unstable();
    for key in keys {
        let count = mult[&key];
        if count % 2 != 0 {
            return Err(GraphError::InfeasibleDegrees {
                reason: format!(
                    "edge {key:?} appears {count} times across adjacency lists (must be even)"
                ),
            });
        }
        for _ in 0..count / 2 {
            edges.push(key);
        }
    }
    Graph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_builds_path() {
        let mut b = GraphBuilder::with_capacity(3, 2);
        assert_eq!(b.add_edge(0, 1).unwrap(), 0);
        assert_eq!(b.add_edge(1, 2).unwrap(), 1);
        assert_eq!(b.n(), 3);
        assert_eq!(b.m(), 2);
        let g = b.build().unwrap();
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn builder_rejects_bad_edges_eagerly() {
        let mut b = GraphBuilder::new(2);
        assert!(b.add_edge(0, 0).is_err());
        assert!(b.add_edge(0, 2).is_err());
        assert_eq!(b.m(), 0);
    }

    #[test]
    fn add_edges_stops_at_first_error() {
        let mut b = GraphBuilder::new(3);
        let r = b.add_edges(vec![(0, 1), (1, 1), (1, 2)]);
        assert!(r.is_err());
        assert_eq!(b.m(), 1);
    }

    #[test]
    fn adjacency_lists_symmetric() {
        let g = from_adjacency_lists(&[vec![1, 2], vec![0, 2], vec![0, 1]]).unwrap();
        assert_eq!(g.m(), 3);
        assert_eq!(g.degree(0), 2);
    }

    #[test]
    fn adjacency_lists_multi_edge() {
        let g = from_adjacency_lists(&[vec![1, 1], vec![0, 0]]).unwrap();
        assert_eq!(g.m(), 2);
        assert!(g.has_parallel_edges());
    }

    #[test]
    fn adjacency_lists_asymmetric_rejected() {
        let err = from_adjacency_lists(&[vec![1], vec![]]).unwrap_err();
        assert!(matches!(err, GraphError::InfeasibleDegrees { .. }));
    }

    #[test]
    fn default_builder_is_empty() {
        let b = GraphBuilder::default();
        assert_eq!(b.n(), 0);
        assert_eq!(b.m(), 0);
        assert!(b.build().is_ok());
    }
}
