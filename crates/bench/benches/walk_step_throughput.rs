//! Steps/second of each walk process on a fixed random 4-regular graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use eproc_bench::rng_for;
use eproc_core::choice::RandomWalkWithChoice;
use eproc_core::fair::LeastUsedFirst;
use eproc_core::rotor::RotorRouter;
use eproc_core::rule::UniformRule;
use eproc_core::srw::SimpleRandomWalk;
use eproc_core::{EProcess, WalkProcess};
use eproc_graphs::generators;

const STEPS: u64 = 10_000;

fn bench_walks(c: &mut Criterion) {
    let mut graph_rng = rng_for(1);
    let g = generators::connected_random_regular(10_000, 4, &mut graph_rng).unwrap();
    let mut group = c.benchmark_group("walk_step_throughput");
    group.throughput(Throughput::Elements(STEPS));
    group.sample_size(20);

    group.bench_function(BenchmarkId::new("eprocess_uniform", g.n()), |b| {
        b.iter(|| {
            let mut rng = rng_for(2);
            let mut w = EProcess::new(&g, 0, UniformRule::new());
            for _ in 0..STEPS {
                std::hint::black_box(w.advance(&mut rng));
            }
        })
    });
    group.bench_function(BenchmarkId::new("srw", g.n()), |b| {
        b.iter(|| {
            let mut rng = rng_for(2);
            let mut w = SimpleRandomWalk::new(&g, 0);
            for _ in 0..STEPS {
                std::hint::black_box(w.advance(&mut rng));
            }
        })
    });
    group.bench_function(BenchmarkId::new("rotor_router", g.n()), |b| {
        b.iter(|| {
            let mut rng = rng_for(2);
            let mut w = RotorRouter::new(&g, 0);
            for _ in 0..STEPS {
                std::hint::black_box(w.advance(&mut rng));
            }
        })
    });
    group.bench_function(BenchmarkId::new("rwc2", g.n()), |b| {
        b.iter(|| {
            let mut rng = rng_for(2);
            let mut w = RandomWalkWithChoice::new(&g, 0, 2);
            for _ in 0..STEPS {
                std::hint::black_box(w.advance(&mut rng));
            }
        })
    });
    group.bench_function(BenchmarkId::new("least_used_first", g.n()), |b| {
        b.iter(|| {
            let mut rng = rng_for(2);
            let mut w = LeastUsedFirst::new(&g, 0);
            for _ in 0..STEPS {
                std::hint::black_box(w.advance(&mut rng));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_walks);
criterion_main!(benches);
