//! Property tests for the graph substrate.

use eproc_graphs::properties::{bipartite, connectivity, cycles, degrees, euler, girth};
use eproc_graphs::{generators, io, ops, Graph};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Strategy: a random simple edge list on `n <= 24` vertices.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (
        2usize..24,
        proptest::collection::vec((0usize..24, 0usize..24), 0..60),
    )
        .prop_map(|(n, pairs)| {
            let mut edges = Vec::new();
            let mut seen = std::collections::HashSet::new();
            for (a, b) in pairs {
                let (u, v) = (a % n, b % n);
                if u != v {
                    let key = (u.min(v), u.max(v));
                    if seen.insert(key) {
                        edges.push(key);
                    }
                }
            }
            Graph::from_edges(n, &edges).expect("valid by construction")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_invariants(g in arb_graph()) {
        // Degree sum is 2m; arc/edge tables agree.
        let total: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(total, 2 * g.m());
        for e in 0..g.m() {
            let (u, v) = g.endpoints(e);
            let (au, av) = g.edge_arcs(e);
            prop_assert_eq!(g.arc_target(au), v);
            prop_assert_eq!(g.arc_target(av), u);
            prop_assert_eq!(g.arc_edge(au), e);
            prop_assert_eq!(g.other_endpoint(e, u), v);
        }
    }

    #[test]
    fn rebuild_round_trips(g in arb_graph()) {
        prop_assert_eq!(&g.rebuilt().unwrap(), &g);
    }

    #[test]
    fn io_round_trips(g in arb_graph()) {
        let text = io::to_edge_list_text(&g);
        prop_assert_eq!(&io::from_edge_list_text(&text).unwrap(), &g);
    }

    #[test]
    fn components_partition_vertices(g in arb_graph()) {
        let labels = connectivity::components(&g);
        prop_assert_eq!(labels.len(), g.n());
        // Edge endpoints share labels.
        for (_, u, v) in g.edges() {
            prop_assert_eq!(labels[u], labels[v]);
        }
        // is_connected agrees with the label count.
        let count = connectivity::component_count(&g);
        prop_assert_eq!(connectivity::is_connected(&g), count <= 1);
    }

    #[test]
    fn bipartite_iff_no_odd_cycle(g in arb_graph()) {
        // Check against exhaustive short-cycle counting (n <= 24 keeps
        // girth <= n, and count_cycles_up_to(n) counts everything).
        let counts = cycles::count_cycles_up_to(&g, g.n().max(3));
        let has_odd = counts.iter().enumerate().any(|(k, &c)| k % 2 == 1 && c > 0);
        prop_assert_eq!(bipartite::is_bipartite(&g), !has_odd);
    }

    #[test]
    fn girth_agrees_with_cycle_counts(g in arb_graph()) {
        let counts = cycles::count_cycles_up_to(&g, g.n().max(3));
        let smallest = counts.iter().enumerate().find(|&(_, &c)| c > 0).map(|(k, _)| k);
        prop_assert_eq!(girth::girth(&g), smallest);
    }

    #[test]
    fn eulerian_iff_even_and_one_edge_component(g in arb_graph()) {
        let circuit = euler::eulerian_circuit(&g);
        if let Some(c) = &circuit {
            prop_assert_eq!(c.len(), g.m());
        }
        let even = degrees::is_even_degree(&g);
        if !even && g.m() > 0 {
            prop_assert!(circuit.is_none());
        }
    }

    #[test]
    fn cycle_decomposition_covers_even_graphs(g in arb_graph()) {
        if !degrees::is_even_degree(&g) {
            return Ok(());
        }
        let cycles = euler::cycle_decomposition_full(&g).expect("even graph decomposes");
        let covered: usize = cycles.iter().map(|c| c.len()).sum();
        prop_assert_eq!(covered, g.m());
    }

    #[test]
    fn double_cover_properties(g in arb_graph()) {
        let d = ops::bipartite_double_cover(&g);
        prop_assert_eq!(d.n(), 2 * g.n());
        prop_assert_eq!(d.m(), 2 * g.m());
        prop_assert!(bipartite::is_bipartite(&d));
        for v in g.vertices() {
            prop_assert_eq!(d.degree(v), g.degree(v));
            prop_assert_eq!(d.degree(v + g.n()), g.degree(v));
        }
    }

    #[test]
    fn product_degree_adds(g in arb_graph()) {
        let h = generators::cycle(3);
        let p = ops::cartesian_product(&g, &h);
        prop_assert_eq!(p.n(), 3 * g.n());
        for u in g.vertices() {
            for v in 0..3 {
                prop_assert_eq!(p.degree(u * 3 + v), g.degree(u) + 2);
            }
        }
    }

    #[test]
    fn line_graph_counts(g in arb_graph()) {
        let l = ops::line_graph(&g);
        prop_assert_eq!(l.n(), g.m());
        // m(L(G)) = sum_v C(d(v), 2) for simple G.
        let expected: usize = g.vertices().map(|v| {
            let d = g.degree(v);
            d * d.saturating_sub(1) / 2
        }).sum();
        prop_assert_eq!(l.m(), expected);
    }

    #[test]
    fn steger_wormald_always_simple_regular(n4 in 2usize..12, r in 3usize..6, seed in 0u64..500) {
        let n = n4 * r.max(4) + r % 2 * r; // ensure n*r even and n > r
        let n = if (n * r) % 2 == 1 { n + 1 } else { n };
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::steger_wormald(n, r, &mut rng).unwrap();
        prop_assert!(degrees::is_regular(&g, r));
        prop_assert!(!g.has_parallel_edges());
    }

    #[test]
    fn gnm_has_exact_edges(n in 2usize..30, seed in 0u64..100) {
        let total = n * (n - 1) / 2;
        let m = total / 2;
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::erdos_renyi_gnm(n, m, &mut rng).unwrap();
        prop_assert_eq!(g.m(), m);
        prop_assert!(!g.has_parallel_edges());
    }

    #[test]
    fn subdivision_preserves_structure(len in 3usize..10, k in 1usize..4, seed in 0u64..50) {
        let g = generators::cycle(len);
        let k = k.min(len);
        let targets: Vec<usize> = (0..k).collect();
        let _ = seed;
        let (h, inserted) = ops::subdivide_edges(&g, &targets).unwrap();
        prop_assert_eq!(h.n(), len + k);
        prop_assert_eq!(h.m(), len + k);
        // Subdividing a cycle gives a longer cycle.
        prop_assert_eq!(girth::girth(&h), Some(len + k));
        for z in inserted {
            prop_assert_eq!(h.degree(z), 2);
        }
    }
}
