//! The `eproc scale` subsystem end to end: sweep artifacts must be
//! bit-identical across thread counts and match a committed golden, the
//! growth-law verdicts must reproduce the paper's linear-vs-`n log n`
//! dichotomy, degenerate sweeps must surface errors (not panics), and
//! every emitted JSON artifact must parse as strict JSON — no bare
//! `inf`/`NaN` literals, ever.

use eproc_engine::builtin;
use eproc_engine::executor::{run, RunOptions};
use eproc_engine::report::{scaling_table, to_json, to_json_with_scaling};
use eproc_engine::scaling::{analyze, ScalingError, STEPS_SERIES};
use eproc_engine::spec::{
    CapSpec, ExperimentSpec, GraphSpec, MetricSpec, ProcessSpec, ResamplePlan, RuleSpec, Scale,
    Target,
};
use eproc_stats::scaling::GrowthModel;

mod common;
use common::json;

/// The exact spec the committed scaling golden (and the CI scale smoke)
/// was built from — the ad-hoc CLI equivalent:
///
/// ```text
/// eproc scale --graph "regular:~{64..256,x2},4" --process eprocess,srw \
///   --trials 4 --resample 2 --metrics cover --threads 4 \
///   --json golden/scaling_small.json
/// ```
fn golden_spec() -> ExperimentSpec {
    let (graphs, resample, range) = GraphSpec::parse_with_sweep("regular:~{64..256,x2},4").unwrap();
    assert!(resample);
    assert_eq!(range.unwrap().points().unwrap(), vec![64, 128, 256]);
    ExperimentSpec {
        name: "scale".into(),
        description: "ad-hoc size sweep built from CLI flags".into(),
        graphs,
        processes: vec![
            ProcessSpec::EProcess {
                rule: RuleSpec::Uniform,
            },
            ProcessSpec::Srw,
        ],
        trials: 4,
        target: Target::VertexCover,
        metrics: vec![MetricSpec::Cover],
        start: 0,
        cap: CapSpec::Auto,
        resample: Some(ResamplePlan { walks_per_graph: 2 }),
    }
}

#[test]
fn scaling_artifact_matches_committed_golden_for_any_thread_count() {
    let golden = include_str!("golden/scaling_small.json");
    for threads in [1, 4] {
        let report = run(
            &golden_spec(),
            &RunOptions {
                threads,
                base_seed: 12345,
            },
        )
        .unwrap();
        let scaling = analyze(&report).unwrap();
        let json = to_json_with_scaling(&report, Some(&scaling));
        assert_eq!(
            json, golden,
            "scaling artifact diverged from the committed golden ({threads} threads)"
        );
    }
}

#[test]
fn scaling_even_builtin_prefers_the_linear_model() {
    // The acceptance gate: `eproc scale scaling-even` must report the
    // linear model for the even-degree E-process series, with R².
    let spec = builtin::spec("scaling-even", Scale::Quick).unwrap();
    let report = run(
        &spec,
        &RunOptions {
            threads: 4,
            base_seed: 12345,
        },
    )
    .unwrap();
    let scaling = analyze(&report).unwrap();
    let steps = scaling
        .series
        .iter()
        .find(|s| s.series == STEPS_SERIES)
        .unwrap();
    assert_eq!(
        steps.selection.preferred,
        GrowthModel::ProportionalEdges,
        "even-degree E-process cover time must fit c*m"
    );
    let fit = steps.selection.preferred_fit();
    assert!(fit.fit.r_squared > 0.999, "R^2 = {}", fit.fit.r_squared);
    // C_V ~ m on random 4-regular graphs: the constant lands near 1.
    assert!((fit.fit.slope - 1.0).abs() < 0.1, "c = {}", fit.fit.slope);
    // Every metric series of the sweep is linear too (C_V and C_E).
    for series in &scaling.series {
        assert!(
            series.selection.preferred.is_linear(),
            "{} preferred {:?}",
            series.series,
            series.selection.preferred
        );
    }
    // The rendered table carries the growth-law verdict.
    let table = scaling_table(&scaling).to_string();
    assert!(table.contains("c*m"), "{table}");
    assert!(table.contains("<-"), "{table}");
}

#[test]
fn scaling_srw_builtin_shows_the_nlogn_contrast() {
    let spec = builtin::spec("scaling-srw", Scale::Quick).unwrap();
    let report = run(
        &spec,
        &RunOptions {
            threads: 4,
            base_seed: 12345,
        },
    )
    .unwrap();
    let scaling = analyze(&report).unwrap();
    let by_process = |p: &str| {
        scaling
            .series
            .iter()
            .find(|s| s.process.starts_with(p) && s.series == STEPS_SERIES)
            .unwrap()
    };
    assert!(
        by_process("e-process").selection.preferred.is_linear(),
        "E-process must stay linear"
    );
    assert_eq!(
        by_process("srw").selection.preferred,
        GrowthModel::NLogN,
        "SRW must grow as c*n ln n"
    );
    // The SRW constant lands near the theoretical (d-1)/(d-2) = 1.5.
    let c = by_process("srw").selection.preferred_fit().fit.slope;
    assert!((1.2..2.0).contains(&c), "SRW nlogn constant {c}");
}

#[test]
fn multi_family_sweeps_fit_one_law_per_family() {
    // A sweep over two families must yield separate series per family —
    // never one mixed curve. The 4-regular family and the cycle family
    // share the same sizes here; mixing them would fit garbage silently.
    let (mut graphs, _, _) = GraphSpec::parse_with_sweep("regular:~{64..256,x2},4").unwrap();
    let (cycles, _, _) = GraphSpec::parse_with_sweep("cycle:{64..256,x2}").unwrap();
    graphs.extend(cycles);
    let spec = ExperimentSpec {
        graphs,
        processes: vec![ProcessSpec::EProcess {
            rule: RuleSpec::Uniform,
        }],
        metrics: vec![],
        ..golden_spec()
    };
    let report = run(
        &spec,
        &RunOptions {
            threads: 2,
            base_seed: 8,
        },
    )
    .unwrap();
    let scaling = analyze(&report).unwrap();
    let families: Vec<&str> = scaling.series.iter().map(|s| s.family.as_str()).collect();
    assert_eq!(families, vec!["random 4-regular", "cycle"]);
    for series in &scaling.series {
        assert_eq!(series.points.len(), 3, "3 sizes per family series");
        assert!(series.selection.preferred.is_linear());
    }
    // The deterministic cycle sweep fits y = m - 1 exactly.
    let cycle = &scaling.series[1];
    let fit = cycle.selection.preferred_fit();
    assert_eq!(cycle.selection.preferred, GrowthModel::AffineEdges);
    assert!((fit.fit.slope - 1.0).abs() < 1e-9);
}

#[test]
fn degenerate_sweep_surfaces_a_scaling_error() {
    // A sweep where nothing completes: analyze must error, not panic —
    // this is the path the CLI turns into `error: growth-law fit …`.
    let mut spec = golden_spec();
    spec.cap = CapSpec::Absolute(1);
    let report = run(
        &spec,
        &RunOptions {
            threads: 2,
            base_seed: 1,
        },
    )
    .unwrap();
    match analyze(&report) {
        Err(ScalingError::Series {
            process, series, ..
        }) => {
            assert_eq!(series, STEPS_SERIES);
            assert!(!process.is_empty());
        }
        other => panic!("expected a series error, got {other:?}"),
    }
}

#[test]
fn every_emitted_artifact_parses_as_strict_json() {
    // Scaling artifact (growth_laws section included).
    let report = run(
        &golden_spec(),
        &RunOptions {
            threads: 2,
            base_seed: 12345,
        },
    )
    .unwrap();
    let scaling = analyze(&report).unwrap();
    json::validate(&to_json_with_scaling(&report, Some(&scaling))).unwrap();
    json::validate(&to_json(&report)).unwrap();

    // Zero-completed resampled cells: OnlineStats min/max are ±∞
    // internally; none of that may leak into the artifact.
    let mut capped = golden_spec();
    capped.cap = CapSpec::Absolute(1);
    let report = run(
        &capped,
        &RunOptions {
            threads: 2,
            base_seed: 3,
        },
    )
    .unwrap();
    let json_text = to_json(&report);
    json::validate(&json_text).unwrap();
    assert!(json_text.contains("\"mean_steps\": null"));

    // Tiny-n cells (complete:2): mean/(n ln n) must serialise as null,
    // not a division artefact.
    let tiny = ExperimentSpec {
        graphs: vec![GraphSpec::Complete { n: 2 }],
        processes: vec![ProcessSpec::Srw],
        resample: None,
        metrics: vec![],
        ..golden_spec()
    };
    let report = run(
        &tiny,
        &RunOptions {
            threads: 1,
            base_seed: 5,
        },
    )
    .unwrap();
    let json_text = to_json(&report);
    json::validate(&json_text).unwrap();
    assert!(
        json_text.contains("\"mean_over_n_log_n\": null"),
        "{json_text}"
    );

    // The committed goldens themselves.
    json::validate(include_str!("golden/comparison_quick.json")).unwrap();
    json::validate(include_str!("golden/multi_metric.json")).unwrap();
    json::validate(include_str!("golden/scaling_small.json")).unwrap();
}

#[test]
fn tiny_n_cells_render_dashes_in_the_text_table() {
    let spec = ExperimentSpec {
        graphs: vec![GraphSpec::Complete { n: 2 }],
        processes: vec![ProcessSpec::Srw],
        resample: None,
        metrics: vec![],
        ..golden_spec()
    };
    let report = run(
        &spec,
        &RunOptions {
            threads: 1,
            base_seed: 5,
        },
    )
    .unwrap();
    let table = eproc_engine::report::to_text_table(&report).to_string();
    let row = table.lines().last().unwrap();
    assert!(row.contains('-'), "n=2 row must dash out n ln n: {row}");
    assert!(
        !row.contains("inf") && !row.contains("NaN"),
        "non-finite leaked into the table: {row}"
    );
}
