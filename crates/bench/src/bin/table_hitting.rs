//! **T-hit**: Lemma 6 and Corollary 9 — stationary hitting times against
//! their spectral bounds, exactly (linear solves) on mid-size graphs,
//! next to *measured* hitting times from the engine ensemble.
//!
//! `E_π(H_v) ≤ 1/((1−λ_max) π_v)` and `E_π(H_S) ≤ 2m/(d(S)(1−λ_max))`.
//! The ratio column shows how much slack the bound leaves on each family.
//!
//! Thin engine wrapper: the built-in `hitting` spec runs the SRW ensemble
//! with a hitting observer (first visit of vertex `n-1` from start `0`)
//! on the same graphs the exact columns are computed on — the engine owns
//! the walking; this binary adds the linear solves and bounds.

use eproc_bench::{metric_mean, run_engine_spec, save_table, Config};
use eproc_spectral::dense::SymMatrix;
use eproc_spectral::hitting::{hitting_from_stationary, set_hitting_from_stationary};
use eproc_spectral::stationary_distribution;
use eproc_stats::TextTable;
use eproc_theory::{corollary9_set_hitting_bound, lemma6_hitting_bound};

fn main() {
    let config = Config::from_args();
    println!("Lemma 6 / Corollary 9: worst-vertex stationary hitting times vs bounds\n");
    let (spec, graphs, report) = run_engine_spec("hitting", &config);
    let mut table = TextTable::new(vec![
        "graph",
        "n",
        "gap",
        "max E_pi(H_v)",
        "Lemma 6 bound",
        "ratio",
        "E_pi(H_S) |S|=4",
        "Cor. 9 bound",
        "mean H(0,n-1)",
    ]);
    for (gi, (gspec, g)) in spec.graphs.iter().zip(&graphs).enumerate() {
        let lambda = SymMatrix::from_graph(g, false).lambda_max_walk();
        if lambda >= 1.0 - 1e-9 {
            // Bipartite: Lemma 6 applies to the lazy chain; skip here
            // (all listed graphs are non-bipartite by construction).
            continue;
        }
        let gap = 1.0 - lambda;
        let pi = stationary_distribution(g);
        let mut worst = (0.0f64, 0.0f64);
        for v in g.vertices() {
            let h = hitting_from_stationary(g, v).expect("connected");
            let b = lemma6_hitting_bound(pi[v], gap);
            assert!(h <= b + 1e-6, "{}: Lemma 6 violated at {v}", gspec.label());
            if h > worst.0 {
                worst = (h, b);
            }
        }
        let set: Vec<usize> = (0..4).map(|i| i * (g.n() / 4)).collect();
        let d_s: usize = set.iter().map(|&v| g.degree(v)).sum();
        let h_s = set_hitting_from_stationary(g, &set).expect("connected");
        let b_s = corollary9_set_hitting_bound(g.m(), d_s, gap);
        assert!(h_s <= b_s + 1e-6, "{}: Corollary 9 violated", gspec.label());
        let cell = &report.cells[gi];
        let measured = metric_mean(cell, "hitting(last)");
        table.push_row(vec![
            gspec.label(),
            g.n().to_string(),
            format!("{gap:.4}"),
            format!("{:.1}", worst.0),
            format!("{:.1}", worst.1),
            format!("{:.3}", worst.0 / worst.1),
            format!("{h_s:.1}"),
            format!("{b_s:.1}"),
            format!("{measured:.1}"),
        ]);
    }
    println!("{table}");
    let p = save_table("table_hitting", &table).expect("write csv");
    println!("csv: {}", p.display());
    let j = eproc_engine::report::save_json(&report, None).expect("write json");
    println!("json: {}", j.display());
}
