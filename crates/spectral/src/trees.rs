//! Spanning-tree counts via the matrix-tree theorem.
//!
//! `t(G) = det(L̃)` for any cofactor `L̃` of the Laplacian. Spanning-tree
//! counts tie the resistance picture together (`R_eff(u,v) =
//! t(G/{uv})/t(G)`) and give another independent exact oracle for the
//! dense linear algebra.

use eproc_graphs::Graph;

/// Number of spanning trees, as a float (counts overflow `u64` quickly;
/// for the graph sizes used in tests the float is exact).
///
/// Returns 0 for disconnected graphs and 1 for a single vertex.
///
/// # Panics
///
/// Panics if the graph is empty (`n == 0`).
pub fn spanning_tree_count(g: &Graph) -> f64 {
    let n = g.n();
    assert!(n > 0, "spanning trees undefined for the empty graph");
    if n == 1 {
        return 1.0;
    }
    // Laplacian with the last row/column deleted.
    let k = n - 1;
    let mut l = vec![0.0f64; k * k];
    for v in 0..k {
        l[v * k + v] = g.degree(v) as f64;
    }
    for (_, u, v) in g.edges() {
        if u < k && v < k {
            l[u * k + v] -= 1.0;
            l[v * k + u] -= 1.0;
        }
    }
    determinant(l, k).max(0.0)
}

/// Determinant by LU decomposition with partial pivoting.
fn determinant(mut a: Vec<f64>, n: usize) -> f64 {
    let mut det = 1.0f64;
    for col in 0..n {
        let pivot_row = (col..n)
            .max_by(|&i, &j| {
                a[i * n + col]
                    .abs()
                    .partial_cmp(&a[j * n + col].abs())
                    .expect("finite")
            })
            .expect("nonempty");
        if a[pivot_row * n + col].abs() < 1e-10 {
            return 0.0;
        }
        if pivot_row != col {
            for k in 0..n {
                a.swap(col * n + k, pivot_row * n + k);
            }
            det = -det;
        }
        let pivot = a[col * n + col];
        det *= pivot;
        for row in (col + 1)..n {
            let factor = a[row * n + col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row * n + k] -= factor * a[col * n + k];
            }
        }
    }
    det
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resistance::effective_resistance;
    use eproc_graphs::{generators, Graph};

    #[test]
    fn tree_has_one_spanning_tree() {
        assert_eq!(
            spanning_tree_count(&generators::binary_tree(3)).round(),
            1.0
        );
        assert_eq!(spanning_tree_count(&generators::path(7)).round(), 1.0);
    }

    #[test]
    fn cycle_has_n_spanning_trees() {
        for n in [3usize, 5, 9] {
            assert_eq!(
                spanning_tree_count(&generators::cycle(n)).round() as usize,
                n
            );
        }
    }

    #[test]
    fn cayley_formula_for_complete_graphs() {
        // t(K_n) = n^{n-2}.
        for n in [3usize, 4, 5, 6, 7] {
            let expected = (n as f64).powi(n as i32 - 2);
            let got = spanning_tree_count(&generators::complete(n));
            assert!(
                (got - expected).abs() < expected * 1e-9,
                "K{n}: {got} vs {expected}"
            );
        }
    }

    #[test]
    fn petersen_has_2000() {
        assert_eq!(
            spanning_tree_count(&generators::petersen()).round() as u64,
            2000
        );
    }

    #[test]
    fn complete_bipartite_formula() {
        // t(K_{a,b}) = a^{b-1} b^{a-1}.
        let g = generators::complete_bipartite(3, 4);
        let expected = 3f64.powi(3) * 4f64.powi(2);
        assert!((spanning_tree_count(&g) - expected).abs() < 1e-6);
    }

    #[test]
    fn parallel_edges_multiply_trees() {
        let single = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let double = Graph::from_edges(2, &[(0, 1), (0, 1)]).unwrap();
        assert_eq!(spanning_tree_count(&single).round() as u64, 1);
        assert_eq!(spanning_tree_count(&double).round() as u64, 2);
    }

    #[test]
    fn disconnected_has_zero() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(spanning_tree_count(&g), 0.0);
    }

    #[test]
    fn resistance_as_tree_ratio() {
        // R_eff(u,v) = t(G with uv contracted) / t(G); verify via the
        // deletion–contraction identity t(G) = t(G−e) + t(G/e) instead:
        // for an edge e = {u,v}, R_eff(u,v) = t(G/e)/t(G)
        //   = (t(G) − t(G−e))/t(G).
        let g = generators::petersen();
        let t_g = spanning_tree_count(&g);
        let (e, u, v) = g.edges().next().unwrap();
        let mut edges = g.edge_list();
        edges.remove(e);
        let g_minus = Graph::from_edges(g.n(), &edges).unwrap();
        let t_minus = spanning_tree_count(&g_minus);
        let r = effective_resistance(&g, u, v).unwrap();
        let predicted = (t_g - t_minus) / t_g;
        assert!(
            (r - predicted).abs() < 1e-9,
            "R = {r} vs tree ratio {predicted}"
        );
    }
}
