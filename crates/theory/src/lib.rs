//! Closed-form bounds and predictions from the paper.
//!
//! Every public function cites the statement it implements. These are used
//! by the experiment binaries to print "measured vs bound" columns and by
//! integration tests to check that simulated quantities respect the
//! theory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod predictions;

pub use bounds::*;
pub use predictions::*;
