//! Deflated power iteration for the walk spectrum of large sparse graphs.
//!
//! All iterations run on the symmetric operator `S = D^{-1/2} A D^{-1/2}`
//! (same spectrum as the transition matrix `P`) with the known principal
//! eigenvector `φ_1 ∝ √d` projected out:
//!
//! * `λ_2` — dominant eigenvalue of `S + I` after deflation, minus 1
//!   (the shift makes the spectrum nonnegative so power iteration is
//!   sign-stable);
//! * `λ_n` — 1 minus the dominant eigenvalue of `I − S` after deflation;
//! * `λ_max = max(λ_2, |λ_n|)`.

use crate::transition::{apply_symmetric, principal_eigenvector};
use eproc_graphs::Graph;

/// Options for [`spectral_gap`].
#[derive(Debug, Clone, Copy)]
pub struct PowerOptions {
    /// Maximum number of matrix applications per eigenvalue.
    pub max_iterations: usize,
    /// Convergence threshold on the Rayleigh-quotient change per step.
    pub tolerance: f64,
}

impl Default for PowerOptions {
    fn default() -> PowerOptions {
        PowerOptions {
            max_iterations: 20_000,
            tolerance: 1e-11,
        }
    }
}

/// Estimates of the walk spectrum of a connected graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectralEstimates {
    /// Second-largest eigenvalue `λ_2` of `P`.
    pub lambda_2: f64,
    /// Smallest eigenvalue `λ_n` of `P` (`-1` exactly iff bipartite).
    pub lambda_n: f64,
    /// `λ_max = max(λ_2, |λ_n|)` — the quantity in all the paper's bounds.
    pub lambda_max: f64,
    /// Matrix applications used in total.
    pub iterations: usize,
}

impl SpectralEstimates {
    /// The eigenvalue gap `1 − λ_max`.
    pub fn gap(&self) -> f64 {
        1.0 - self.lambda_max
    }

    /// The lazy-walk gap `1 − λ_max(lazy)` where the lazy spectrum is
    /// `(1 + λ_i)/2`; the paper's fix for bipartite graphs (§2.1).
    pub fn lazy_gap(&self) -> f64 {
        (1.0 - self.lambda_2) / 2.0
    }
}

/// Computes `λ_2`, `λ_n`, `λ_max` of the simple random walk on a connected
/// graph with deflated power iteration.
///
/// For disconnected graphs the deflation is incomplete (eigenvalue 1 has
/// multiplicity `> 1`) and estimates converge to 1; callers should check
/// connectivity first (the paper assumes it throughout).
///
/// # Panics
///
/// Panics if the graph has no edges.
pub fn spectral_gap(g: &Graph, opts: PowerOptions) -> SpectralEstimates {
    assert!(g.m() > 0, "spectral gap undefined for an edgeless graph");
    let n = g.n();
    if n <= 1 {
        return SpectralEstimates {
            lambda_2: 0.0,
            lambda_n: 0.0,
            lambda_max: 0.0,
            iterations: 0,
        };
    }
    let phi = principal_eigenvector(g);
    // Dominant eigenvalue of x -> (S + shift·I) x, deflated against φ1.
    // Both shifts used below make the operator PSD on the deflated
    // subspace, so the norm-growth ratio converges to the eigenvalue.
    let mut total_iters = 0usize;
    let mut dominant = |shift: f64| -> f64 {
        let mut x = pseudorandom_unit(n, &phi);
        let mut prev = f64::INFINITY;
        for it in 0..opts.max_iterations {
            total_iters += 1;
            let mut y = apply_symmetric(g, &x, false);
            for (yi, xi) in y.iter_mut().zip(&x) {
                *yi += shift * xi;
            }
            project_out(&mut y, &phi);
            let norm = norm2(&y);
            if norm < 1e-300 {
                return 0.0; // operator annihilates the complement (K2-like)
            }
            for v in &mut y {
                *v /= norm;
            }
            if (norm - prev).abs() < opts.tolerance && it > 10 {
                return norm;
            }
            prev = norm;
            x = y;
        }
        prev
    };
    // S + I has deflated spectrum {1 + λ_i}_{i≥2} ⊂ [0, 2]: dominant = 1 + λ_2.
    let lambda_2 = (dominant(1.0) - 1.0).clamp(-1.0, 1.0);
    // -(S - I) = I - S has deflated spectrum {1 - λ_i}_{i≥2} ⊂ [0, 2]:
    // dominant (in norm, sign-insensitive) = 1 - λ_n.
    let lambda_n = (1.0 - dominant(-1.0)).clamp(-1.0, 1.0);
    let lambda_max = lambda_2.max(lambda_n.abs());
    SpectralEstimates {
        lambda_2,
        lambda_n,
        lambda_max,
        iterations: total_iters,
    }
}

/// Deterministic pseudo-random unit vector orthogonal to `phi` (fixed seed
/// keeps the whole pipeline reproducible without threading an RNG here).
fn pseudorandom_unit(n: usize, phi: &[f64]) -> Vec<f64> {
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut x: Vec<f64> = (0..n)
        .map(|_| {
            // SplitMix64 step.
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect();
    project_out(&mut x, phi);
    let norm = norm2(&x);
    if norm > 0.0 {
        for v in &mut x {
            *v /= norm;
        }
    }
    x
}

fn project_out(x: &mut [f64], phi: &[f64]) {
    let coeff = dot(x, phi);
    for (xi, pi) in x.iter_mut().zip(phi) {
        *xi -= coeff * pi;
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::SymMatrix;
    use eproc_graphs::generators;

    fn assert_close(a: f64, b: f64, tol: f64, what: &str) {
        assert!((a - b).abs() < tol, "{what}: {a} vs {b}");
    }

    #[test]
    fn cycle_spectrum() {
        let n = 12;
        let g = generators::cycle(n);
        let est = spectral_gap(&g, PowerOptions::default());
        let expected2 = (2.0 * std::f64::consts::PI / n as f64).cos();
        assert_close(est.lambda_2, expected2, 1e-6, "lambda_2 of C12");
        assert_close(est.lambda_n, -1.0, 1e-6, "lambda_n of even cycle");
        assert_close(est.lambda_max, 1.0, 1e-6, "lambda_max bipartite");
        assert!(est.lazy_gap() > 0.0);
    }

    #[test]
    fn complete_graph_spectrum() {
        let n = 10;
        let g = generators::complete(n);
        let est = spectral_gap(&g, PowerOptions::default());
        assert_close(
            est.lambda_2,
            -1.0 / (n as f64 - 1.0),
            1e-7,
            "lambda_2 of K10",
        );
        assert_close(
            est.lambda_n,
            -1.0 / (n as f64 - 1.0),
            1e-7,
            "lambda_n of K10",
        );
    }

    #[test]
    fn hypercube_spectrum() {
        let r = 5;
        let g = generators::hypercube(r);
        let est = spectral_gap(&g, PowerOptions::default());
        assert_close(est.lambda_2, 1.0 - 2.0 / r as f64, 1e-7, "lambda_2 of H5");
        assert_close(est.lambda_n, -1.0, 1e-7, "lambda_n of bipartite H5");
    }

    #[test]
    fn matches_jacobi_on_irregular_graphs() {
        for g in [
            generators::lollipop(6, 4),
            generators::torus2d(3, 5),
            generators::petersen(),
            generators::figure_eight(4),
        ] {
            let est = spectral_gap(&g, PowerOptions::default());
            let exact = SymMatrix::from_graph(&g, false).eigenvalues();
            assert_close(est.lambda_2, exact[1], 1e-6, "lambda_2 vs jacobi");
            assert_close(est.lambda_n, exact[g.n() - 1], 1e-6, "lambda_n vs jacobi");
        }
    }

    #[test]
    fn k2_degenerate() {
        let est = spectral_gap(&generators::complete(2), PowerOptions::default());
        assert_close(est.lambda_n, -1.0, 1e-9, "lambda_n of K2");
        assert_close(est.lambda_max, 1.0, 1e-9, "lambda_max of K2");
    }

    #[test]
    fn gap_accessors() {
        let est = SpectralEstimates {
            lambda_2: 0.8,
            lambda_n: -0.9,
            lambda_max: 0.9,
            iterations: 0,
        };
        assert_close(est.gap(), 0.1, 1e-12, "gap");
        assert_close(est.lazy_gap(), 0.1, 1e-12, "lazy gap");
    }

    #[test]
    fn random_regular_gap_is_large() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        let g = generators::connected_random_regular(200, 4, &mut rng).unwrap();
        let est = spectral_gap(&g, PowerOptions::default());
        // Friedman: λ ≈ 2√3/4 ≈ 0.866 for r = 4; allow slack for n = 200.
        assert!(
            est.lambda_2 < 0.95,
            "random 4-regular should expand, λ2 = {}",
            est.lambda_2
        );
        assert!(
            est.lambda_2 > 0.5,
            "λ2 = {} suspiciously small",
            est.lambda_2
        );
    }
}
