//! The ensemble-over-graphs subsystem: per-trial graph resampling must be
//! thread-count deterministic, actually vary the graph across trials,
//! report coherent variance splits, and fail fast (not hang) when a
//! family cannot produce a connected sample.

use eproc_engine::executor::{
    build_graphs, resample_graph_seed, run, run_on_graphs, BlockError, EngineError, RunOptions,
};
use eproc_engine::report::to_json;
use eproc_engine::spec::{
    CapSpec, ExperimentSpec, GraphSpec, MetricSpec, ProcessSpec, ResamplePlan, RuleSpec, Scale,
    Target,
};

fn ensemble_spec(walks_per_graph: usize) -> ExperimentSpec {
    ExperimentSpec {
        name: "resample-test".into(),
        description: "per-trial graph resampling".into(),
        graphs: vec![
            GraphSpec::Regular { n: 48, d: 3 },
            GraphSpec::Regular { n: 64, d: 4 },
        ],
        processes: vec![
            ProcessSpec::EProcess {
                rule: RuleSpec::Uniform,
            },
            ProcessSpec::Srw,
        ],
        trials: 6,
        target: Target::VertexCover,
        metrics: vec![MetricSpec::Cover, MetricSpec::Hitting { vertex: None }],
        start: 0,
        cap: CapSpec::Auto,
        resample: Some(ResamplePlan { walks_per_graph }),
    }
}

#[test]
fn resampled_artifacts_are_bit_identical_across_thread_counts() {
    for walks in [1, 2] {
        let spec = ensemble_spec(walks);
        let sequential = run(
            &spec,
            &RunOptions {
                threads: 1,
                base_seed: 99,
            },
        )
        .unwrap();
        for threads in [2, 4, 8] {
            let parallel = run(
                &spec,
                &RunOptions {
                    threads,
                    base_seed: 99,
                },
            )
            .unwrap();
            assert_eq!(
                to_json(&sequential),
                to_json(&parallel),
                "resampled artifact diverged at {threads} threads (walks_per_graph = {walks})"
            );
        }
    }
}

#[test]
fn resampling_changes_the_ensemble() {
    // The same seed with and without resampling must disagree: shared
    // mode walks one graph six times, resample mode walks six graphs.
    let resampled = run(
        &ensemble_spec(1),
        &RunOptions {
            threads: 2,
            base_seed: 7,
        },
    )
    .unwrap();
    let mut shared_spec = ensemble_spec(1);
    shared_spec.resample = None;
    let shared = run(
        &shared_spec,
        &RunOptions {
            threads: 2,
            base_seed: 7,
        },
    )
    .unwrap();
    assert_ne!(
        resampled.cells[1].steps.mean(),
        shared.cells[1].steps.mean(),
        "six distinct cubic samples matching one shared sample exactly is vanishingly unlikely"
    );
}

#[test]
fn variance_split_is_coherent() {
    let report = run(
        &ensemble_spec(2),
        &RunOptions {
            threads: 3,
            base_seed: 11,
        },
    )
    .unwrap();
    assert_eq!(report.resample, Some(ResamplePlan { walks_per_graph: 2 }));
    for cell in &report.cells {
        assert_eq!(cell.completed, 6, "{}/{}", cell.graph, cell.process);
        let split = cell.steps_split.as_ref().expect("resampled cells split");
        // 6 trials, 2 walks per graph: 3 graph samples.
        assert_eq!(split.graph_samples, 3);
        assert_eq!(split.across.count(), 3);
        let within = split.within_variance.expect("replicates exist");
        assert!(within >= 0.0);
        // The mean of per-graph means equals the pooled mean when every
        // group has the same size.
        assert!(
            (split.across.mean() - cell.steps.mean()).abs() < 1e-9,
            "balanced design: mean of group means must equal pooled mean"
        );
        for metric in &cell.metrics {
            let msplit = metric.split.as_ref().expect("metric split present");
            assert_eq!(msplit.graph_samples, 3);
        }
    }
    // JSON carries the components.
    let json = to_json(&report);
    assert!(json.contains("\"resample\": {\"walks_per_graph\": 2}"));
    assert!(json.contains("\"variance_components\""));
    assert!(json.contains("\"across_graph_variance\""));
    assert!(json.contains("\"within_graph_variance\""));
}

#[test]
fn per_trial_resampling_has_no_within_component() {
    let report = run(
        &ensemble_spec(1),
        &RunOptions {
            threads: 2,
            base_seed: 13,
        },
    )
    .unwrap();
    for cell in &report.cells {
        let split = cell.steps_split.as_ref().unwrap();
        assert_eq!(split.graph_samples, 6, "one graph per trial");
        assert!(
            split.within_variance.is_none(),
            "no replicate walks: within-graph variance is inestimable"
        );
    }
    let json = to_json(&report);
    assert!(json.contains("\"within_graph_variance\": null"));
}

#[test]
fn shared_mode_reports_no_split() {
    let mut spec = ensemble_spec(1);
    spec.resample = None;
    let report = run(
        &spec,
        &RunOptions {
            threads: 2,
            base_seed: 3,
        },
    )
    .unwrap();
    assert!(report.resample.is_none());
    for cell in &report.cells {
        assert!(cell.steps_split.is_none());
        assert!(cell.metrics.iter().all(|m| m.split.is_none()));
    }
    let json = to_json(&report);
    assert!(!json.contains("variance_components"));
    assert!(!json.contains("\"resample\""));
}

#[test]
fn run_on_graphs_refuses_resample_specs() {
    // Prebuilt graphs would never be walked under resampling — a wrapper
    // computing per-graph enrichment from them would describe graphs the
    // report's statistics never touched. The API refuses instead.
    let spec = ensemble_spec(1);
    let mut shared = spec.clone();
    shared.resample = None;
    let graphs = build_graphs(&shared, 1).unwrap();
    let err = run_on_graphs(
        &spec,
        &RunOptions {
            threads: 1,
            base_seed: 1,
        },
        &graphs,
    )
    .unwrap_err();
    assert!(matches!(err, EngineError::Spec(_)), "{err}");
    assert!(err.to_string().contains("resampling"), "{err}");
}

#[test]
fn resample_seeds_are_distinct_and_process_free() {
    // Graph samples are keyed by (family, group) only — every process in
    // a cell walks the same ensemble member.
    let a = resample_graph_seed(5, 0, 0);
    let b = resample_graph_seed(5, 0, 1);
    let c = resample_graph_seed(5, 1, 0);
    assert_ne!(a, b);
    assert_ne!(a, c);
    assert_ne!(b, c);
    assert_ne!(a, resample_graph_seed(6, 0, 0), "base seed must matter");
}

#[test]
fn geometric_retry_exhaustion_fails_fast_through_engine_error() {
    // A radius factor far below the connectivity threshold: no sample is
    // ever connected. Pre-fix this spun forever inside the executor; now
    // it must return GraphError::RetriesExhausted via EngineError::Graph.
    let spec = ExperimentSpec {
        graphs: vec![GraphSpec::Geometric {
            n: 60,
            radius_factor: 0.05,
        }],
        processes: vec![ProcessSpec::Srw],
        trials: 1,
        metrics: vec![],
        ..ensemble_spec(1)
    };
    // Shared mode: the failure surfaces from build_graphs.
    let mut shared = spec.clone();
    shared.resample = None;
    let err = run(
        &shared,
        &RunOptions {
            threads: 1,
            base_seed: 1,
        },
    )
    .unwrap_err();
    assert!(err.to_string().contains("exhausted"), "{err}");
    match err {
        EngineError::Graph { graph, source } => {
            assert!(graph.contains("geometric"), "{graph}");
            assert!(
                matches!(source, eproc_graphs::GraphError::RetriesExhausted { .. }),
                "{source}"
            );
        }
        other => panic!("expected EngineError::Graph, got {other}"),
    }
    // Resample mode hits the same failure inside a worker thread; it must
    // propagate as an error, not a panic, and the error names the block
    // that died — family, trial group and claiming worker.
    let err = run(
        &spec,
        &RunOptions {
            threads: 2,
            base_seed: 1,
        },
    )
    .unwrap_err();
    match err {
        EngineError::Block {
            ref graph,
            group,
            worker,
            ref source,
        } => {
            assert!(graph.contains("geometric"), "{graph}");
            assert_eq!(group, 0, "the first block claimed must be group 0");
            assert!(worker < 2, "worker id {worker} out of pool range");
            assert!(
                matches!(
                    source,
                    BlockError::Graph(eproc_graphs::GraphError::RetriesExhausted { .. })
                ),
                "{source}"
            );
        }
        ref other => panic!("expected EngineError::Block, got {other}"),
    }
    let msg = err.to_string();
    assert!(msg.contains("worker"), "{msg}");
    assert!(msg.contains("family"), "{msg}");
    assert!(msg.contains("resample group 0"), "{msg}");
}

#[test]
fn resampled_builtins_run_scaled_down() {
    for name in ["cubicensemble", "odddegree"] {
        let mut spec = eproc_engine::builtin::spec(name, Scale::Quick).unwrap();
        spec.graphs.truncate(1);
        spec.graphs = vec![GraphSpec::Regular { n: 32, d: 3 }];
        spec.trials = 4;
        let a = run(
            &spec,
            &RunOptions {
                threads: 1,
                base_seed: 21,
            },
        )
        .unwrap();
        let b = run(
            &spec,
            &RunOptions {
                threads: 4,
                base_seed: 21,
            },
        )
        .unwrap();
        assert_eq!(
            to_json(&a),
            to_json(&b),
            "builtin {name} not thread-invariant"
        );
        assert!(a.cells.iter().all(|c| c.completed == 4));
        assert!(a.cells[0].steps_split.is_some());
    }
}
