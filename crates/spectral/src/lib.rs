//! Spectral toolkit for the `eproc` workspace.
//!
//! The paper's cover-time bounds are parameterised by the eigenvalue gap
//! `1 − λ_max` of the simple-random-walk transition matrix `P`, where
//! `λ_max = max(λ_2, |λ_n|)` (§2.1). This crate computes those quantities:
//!
//! * [`transition`] — stationary distribution, sparse application of `P`
//!   and of the symmetrised operator `S = D^{-1/2} A D^{-1/2}` (same
//!   spectrum as `P`), with optional laziness (the paper's trick for
//!   bipartite graphs);
//! * [`dense`] — dense symmetric matrices, cyclic Jacobi eigensolver and a
//!   Gaussian-elimination linear solver: exact oracles for small graphs;
//! * [`power`] — deflated power iteration for `λ_2`, `λ_n`, `λ_max` on
//!   large sparse graphs;
//! * [`lanczos`] — Lanczos tridiagonalisation with full reorthogonalisation
//!   as a cross-check / faster alternative on large graphs;
//! * [`hitting`] — exact hitting times `E_u(H_v)`, commute times,
//!   stationary hitting times `E_π(H_v)` and the return-time identity
//!   `E_v T_v^+ = 1/π_v` (used by Theorem 5's proof);
//! * [`conductance`] — exact conductance `Φ(G)` on small graphs and the
//!   Cheeger sandwich `1 − 2Φ ≤ λ_2 ≤ 1 − Φ²/2` (eq. 19 of the paper);
//! * [`mixing`] — total-variation mixing by explicit evolution, compared
//!   with the spectral mixing time `T = K log n / (1 − λ_max)` (Lemma 7).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conductance;
pub mod dense;
pub mod hitting;
pub mod lanczos;
pub mod mixing;
pub mod power;
pub mod resistance;
pub mod transition;
pub mod trees;

pub use power::{spectral_gap, SpectralEstimates};
pub use transition::stationary_distribution;
