//! `ℓ`-goodness: minimal even-degree subgraphs through a vertex.
//!
//! Paper, §1: *"A vertex `v` is `ℓ`-good, if any even degree subgraph
//! containing all edges incident with `v` contains at least `ℓ` vertices. A
//! graph `G` is `ℓ`-good, if every vertex has the `ℓ`-good property."*
//!
//! "Even degree subgraph" here is an **edge-induced** subgraph in which
//! every vertex has even (positive) degree, i.e. an element of the cycle
//! space of `G`; the constraint is that it contains the full edge star
//! `δ(v)`.
//!
//! Finding the minimum-vertex such subgraph is combinatorially hard in
//! general, so this module provides:
//!
//! * [`min_even_subgraph_through`] — an **exact** exponential search over
//!   the cycle space (bitmask enumeration), usable as an oracle on small
//!   graphs (`m − d(v) ≤ 22`, `n ≤ 64`);
//! * [`even_subgraph_upper_bound`] — a scalable greedy construction that
//!   pairs up the ports of `v` with edge-disjoint short cycles, yielding an
//!   upper bound on `ℓ(v)` (and hence on `ℓ(G)`);
//! * [`lgood_exact`] — exact `ℓ(G) = min_v ℓ(v)` for small graphs.

use crate::csr::{EdgeId, Graph, Vertex};

/// Hard cap on the number of free edges for the exact search (`2^22`
/// subsets ≈ 4M).
const EXACT_FREE_EDGE_LIMIT: usize = 22;

/// The minimal even-degree edge-induced subgraph containing all edges
/// incident with `v`, found by exhaustive search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinEvenSubgraph {
    /// Number of vertices in the minimal subgraph — this is `ℓ(v)`.
    pub vertex_count: usize,
    /// The edges of one minimal subgraph (includes all of `δ(v)`).
    pub edges: Vec<EdgeId>,
}

/// Exact `ℓ(v)`: exhaustively searches all even-degree subgraphs containing
/// `δ(v)` and returns a minimum-vertex witness, or `None` if no such
/// subgraph exists (e.g. `v` has odd degree, or a bridge at `v` cannot be
/// completed to even degree).
///
/// # Errors
///
/// Returns `Err` with a descriptive message when the instance is too large
/// for exact search (`n > 64` or more than 22 free edges).
pub fn min_even_subgraph_through(g: &Graph, v: Vertex) -> Result<Option<MinEvenSubgraph>, String> {
    if g.n() > 64 {
        return Err(format!(
            "exact l-good search requires n <= 64, got {}",
            g.n()
        ));
    }
    let star: Vec<EdgeId> = g.arc_range(v).map(|a| g.arc_edge(a)).collect();
    let free: Vec<EdgeId> = (0..g.m()).filter(|e| !star.contains(e)).collect();
    if free.len() > EXACT_FREE_EDGE_LIMIT {
        return Err(format!(
            "exact l-good search limited to {EXACT_FREE_EDGE_LIMIT} free edges, instance has {}",
            free.len()
        ));
    }
    // Per-edge endpoint masks: XOR accumulates degree parity, OR accumulates
    // vertex presence.
    let edge_mask = |e: EdgeId| -> u64 {
        let (a, b) = g.endpoints(e);
        (1u64 << a) | (1u64 << b)
    };
    let mut fixed_parity = 0u64;
    let mut fixed_presence = 0u64;
    for &e in &star {
        fixed_parity ^= edge_mask(e);
        fixed_presence |= edge_mask(e);
    }
    let free_masks: Vec<u64> = free.iter().map(|&e| edge_mask(e)).collect();
    let mut best: Option<(usize, u64)> = None; // (vertex count, chosen free subset)
    for subset in 0u64..(1u64 << free.len()) {
        let mut parity = fixed_parity;
        let mut presence = fixed_presence;
        let mut bits = subset;
        while bits != 0 {
            let i = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            parity ^= free_masks[i];
            presence |= free_masks[i];
        }
        if parity == 0 {
            let count = presence.count_ones() as usize;
            if best.is_none_or(|(b, _)| count < b) {
                best = Some((count, subset));
            }
        }
    }
    Ok(best.map(|(count, subset)| {
        let mut edges = star.clone();
        for (i, &e) in free.iter().enumerate() {
            if subset & (1 << i) != 0 {
                edges.push(e);
            }
        }
        edges.sort_unstable();
        MinEvenSubgraph {
            vertex_count: count,
            edges,
        }
    }))
}

/// Exact `ℓ(G) = min_v ℓ(v)` by exhaustive search at every vertex.
///
/// Returns `None` if some vertex admits **no** even subgraph through its
/// star (then the graph is not `ℓ`-good for any `ℓ` — e.g. it has a
/// bridge incident to some vertex).
///
/// # Errors
///
/// Propagates the size limits of [`min_even_subgraph_through`].
pub fn lgood_exact(g: &Graph) -> Result<Option<usize>, String> {
    let mut best: Option<usize> = None;
    for v in g.vertices() {
        match min_even_subgraph_through(g, v)? {
            None => return Ok(None),
            Some(w) => {
                best = Some(best.map_or(w.vertex_count, |b: usize| b.min(w.vertex_count)));
            }
        }
    }
    Ok(best)
}

/// Greedy upper bound on `ℓ(v)`: pairs the ports of `v` and closes each
/// pair with a shortest edge-disjoint path avoiding `v`, producing an even
/// subgraph containing `δ(v)` whose vertex count bounds `ℓ(v)` (and hence
/// `ℓ(G)`) from above.
///
/// Returns `None` when the greedy pairing gets stuck (some pair of ports
/// has no connecting path edge-disjoint from the cycles already built);
/// this does **not** imply `ℓ(v)` is undefined.
pub fn even_subgraph_upper_bound(g: &Graph, v: Vertex) -> Option<usize> {
    if !g.degree(v).is_multiple_of(2) {
        return None;
    }
    let mut used_edge = vec![false; g.m()];
    let mut present = vec![false; g.n()];
    present[v] = true;
    let ports: Vec<(Vertex, EdgeId)> = g
        .arc_range(v)
        .map(|a| (g.arc_target(a), g.arc_edge(a)))
        .collect();
    let mut remaining: Vec<(Vertex, EdgeId)> = ports;
    while let Some((start, start_edge)) = remaining.pop() {
        used_edge[start_edge] = true;
        present[start] = true;
        // BFS from `start` to any other pending port target, avoiding `v`
        // and used edges.
        let targets: Vec<Vertex> = remaining.iter().map(|&(t, _)| t).collect();
        let path = bfs_avoiding(g, start, &targets, v, &used_edge)?;
        let endpoint = *path.last().expect("path is nonempty");
        // Remove one pending port whose target is `endpoint`.
        let idx = remaining.iter().position(|&(t, _)| t == endpoint)?;
        let (_, end_edge) = remaining.swap_remove(idx);
        used_edge[end_edge] = true;
        for w in path.windows(2) {
            let e = find_free_edge(g, w[0], w[1], &used_edge)?;
            used_edge[e] = true;
        }
        for &w in &path {
            present[w] = true;
        }
    }
    Some(present.iter().filter(|&&p| p).count())
}

/// Best (smallest) greedy upper bound over a set of probe vertices; an
/// upper bound on `ℓ(G)`. Returns `None` if the greedy construction failed
/// at every probe.
pub fn lgood_upper_bound(g: &Graph, probes: &[Vertex]) -> Option<usize> {
    probes
        .iter()
        .filter_map(|&v| even_subgraph_upper_bound(g, v))
        .min()
}

/// BFS from `start` to the nearest vertex in `targets`, avoiding vertex
/// `banned` and all used edges; returns the vertex path (start … target).
fn bfs_avoiding(
    g: &Graph,
    start: Vertex,
    targets: &[Vertex],
    banned: Vertex,
    used_edge: &[bool],
) -> Option<Vec<Vertex>> {
    if targets.contains(&start) {
        return Some(vec![start]);
    }
    let mut prev: Vec<Option<Vertex>> = vec![None; g.n()];
    let mut seen = vec![false; g.n()];
    seen[start] = true;
    seen[banned] = true;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        for (_, w, e) in g.ports(u) {
            if seen[w] || used_edge[e] {
                continue;
            }
            seen[w] = true;
            prev[w] = Some(u);
            if targets.contains(&w) {
                let mut path = vec![w];
                let mut cur = w;
                while let Some(p) = prev[cur] {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            queue.push_back(w);
        }
    }
    None
}

fn find_free_edge(g: &Graph, u: Vertex, w: Vertex, used_edge: &[bool]) -> Option<EdgeId> {
    g.ports(u)
        .find(|&(_, t, e)| t == w && !used_edge[e])
        .map(|(_, _, e)| e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::properties::degrees;

    #[test]
    fn figure_eight_is_minimal_itself() {
        let g = generators::figure_eight(3); // 5 vertices, two triangles at 0
        let w = min_even_subgraph_through(&g, 0).unwrap().unwrap();
        assert_eq!(w.vertex_count, 5);
        assert_eq!(w.edges.len(), 6);
    }

    #[test]
    fn cycle_l_is_n() {
        let g = generators::cycle(9);
        let w = min_even_subgraph_through(&g, 4).unwrap().unwrap();
        assert_eq!(w.vertex_count, 9);
        assert_eq!(lgood_exact(&g).unwrap(), Some(9));
    }

    #[test]
    fn k5_l_is_5() {
        let g = generators::complete(5);
        assert_eq!(lgood_exact(&g).unwrap(), Some(5));
    }

    #[test]
    fn torus_3x3_l_is_5() {
        // Two orthogonal wrap-triangles through v share only v.
        let g = generators::torus2d(3, 3);
        let w = min_even_subgraph_through(&g, 0).unwrap().unwrap();
        assert_eq!(w.vertex_count, 5);
        assert_eq!(lgood_exact(&g).unwrap(), Some(5));
    }

    #[test]
    fn odd_degree_vertex_has_no_even_subgraph() {
        let g = generators::petersen();
        assert_eq!(min_even_subgraph_through(&g, 0).unwrap(), None);
        assert_eq!(lgood_exact(&g).unwrap(), None);
    }

    #[test]
    fn witness_is_even_and_contains_star() {
        let g = generators::complete(5);
        for v in g.vertices() {
            let w = min_even_subgraph_through(&g, v).unwrap().unwrap();
            let mut deg = vec![0usize; g.n()];
            for &e in &w.edges {
                let (a, b) = g.endpoints(e);
                deg[a] += 1;
                deg[b] += 1;
            }
            assert!(deg.iter().all(|&d| d % 2 == 0), "witness must be even");
            assert_eq!(
                deg[v],
                g.degree(v),
                "witness must contain the full star of {v}"
            );
        }
    }

    #[test]
    fn exact_limits_enforced() {
        let g = generators::cycle(70);
        assert!(min_even_subgraph_through(&g, 0).is_err());
        let g = generators::complete(9); // m - d = 36 - 8 = 28 > 22
        assert!(min_even_subgraph_through(&g, 0).is_err());
    }

    #[test]
    fn upper_bound_dominates_exact() {
        for g in [
            generators::figure_eight(3),
            generators::torus2d(3, 3),
            generators::complete(5),
        ] {
            assert!(degrees::is_even_degree(&g));
            for v in g.vertices() {
                let exact = min_even_subgraph_through(&g, v)
                    .unwrap()
                    .unwrap()
                    .vertex_count;
                if let Some(ub) = even_subgraph_upper_bound(&g, v) {
                    assert!(
                        ub >= exact,
                        "greedy {ub} must dominate exact {exact} at {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn upper_bound_on_cycle_is_exact() {
        let g = generators::cycle(11);
        assert_eq!(even_subgraph_upper_bound(&g, 0), Some(11));
    }

    #[test]
    fn upper_bound_rejects_odd_degree() {
        let g = generators::petersen();
        assert_eq!(even_subgraph_upper_bound(&g, 0), None);
    }

    #[test]
    fn lgood_upper_bound_over_probes() {
        let g = generators::torus2d(4, 4);
        let probes: Vec<_> = g.vertices().collect();
        let ub = lgood_upper_bound(&g, &probes).unwrap();
        // Two orthogonal 4-wraps share one vertex: 7 vertices.
        assert_eq!(ub, 7);
    }

    #[test]
    fn hypercube_even_dimension_greedy_bound() {
        // H4 has too many free edges for the exact oracle; the greedy
        // bound still works: two edge-disjoint 4-cycles through v.
        let g = generators::hypercube(4);
        assert!(min_even_subgraph_through(&g, 0).is_err());
        let ub = even_subgraph_upper_bound(&g, 0).unwrap();
        assert!((5..=7).contains(&ub), "greedy bound {ub} out of range");
    }

    #[test]
    fn torus_3x4_exact_vs_greedy() {
        let g = generators::torus2d(3, 4); // m = 24, d = 4: exact feasible
        let exact = min_even_subgraph_through(&g, 0)
            .unwrap()
            .unwrap()
            .vertex_count;
        // Wrap-triangle (3 vertices) + wrap-4-cycle (4 vertices) sharing v.
        assert_eq!(exact, 6);
        let ub = even_subgraph_upper_bound(&g, 0).unwrap();
        assert!(ub >= exact);
    }
}
