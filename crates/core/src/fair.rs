//! Locally fair exploration: Oldest-First and Least-Used-First.
//!
//! Cooper–Ilcinkas–Klasing–Kosowski (reference \[5\] of the paper): at each
//! vertex the explorer picks either the incident edge that has waited
//! longest since its last traversal (**Oldest-First**, which can be
//! exponentially slow on some graphs) or the incident edge traversed the
//! fewest times (**Least-Used-First**, which covers in `O(mD)`). Both are
//! deterministic given a tie-breaking order; ties are broken by port
//! order here.

use crate::process::{Step, StepKind, WalkProcess};
use eproc_graphs::{EdgeId, Graph, Vertex};
use rand::RngCore;

/// Shared state machine for the two locally fair strategies.
#[derive(Debug, Clone)]
struct FairState<'g> {
    g: &'g Graph,
    current: Vertex,
    steps: u64,
    last_used: Vec<u64>, // per edge; 0 = never, else step index + 1
    use_count: Vec<u64>, // per edge
}

impl<'g> FairState<'g> {
    fn new(g: &'g Graph, start: Vertex) -> FairState<'g> {
        assert!(start < g.n(), "start vertex {start} out of range");
        FairState {
            g,
            current: start,
            steps: 0,
            last_used: vec![0; g.m()],
            use_count: vec![0; g.m()],
        }
    }

    fn step_along(&mut self, arc: usize) -> Step {
        let v = self.current;
        let e = self.g.arc_edge(arc);
        let to = self.g.arc_target(arc);
        let kind = if self.use_count[e] == 0 {
            StepKind::Blue
        } else {
            StepKind::Red
        };
        self.use_count[e] += 1;
        self.last_used[e] = self.steps + 1;
        self.current = to;
        self.steps += 1;
        Step {
            from: v,
            to,
            edge: Some(e),
            kind,
        }
    }
}

/// Oldest-First: traverse the incident edge least recently used.
#[derive(Debug, Clone)]
pub struct OldestFirst<'g> {
    state: FairState<'g>,
}

impl<'g> OldestFirst<'g> {
    /// Creates the explorer at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `start >= g.n()`.
    pub fn new(g: &'g Graph, start: Vertex) -> OldestFirst<'g> {
        OldestFirst {
            state: FairState::new(g, start),
        }
    }

    /// Times edge `e` has been traversed.
    ///
    /// # Panics
    ///
    /// Panics if `e >= g.m()`.
    pub fn use_count(&self, e: EdgeId) -> u64 {
        self.state.use_count[e]
    }
}

impl<'g> WalkProcess for OldestFirst<'g> {
    fn graph(&self) -> &Graph {
        self.state.g
    }

    fn current(&self) -> Vertex {
        self.state.current
    }

    fn steps(&self) -> u64 {
        self.state.steps
    }

    fn advance(&mut self, mut rng: &mut dyn RngCore) -> Step {
        self.advance_rng(&mut rng)
    }

    fn advance_rng<R: RngCore>(&mut self, _rng: &mut R) -> Step {
        let v = self.state.current;
        let range = self.state.g.arc_range(v);
        assert!(!range.is_empty(), "explorer stuck at isolated vertex {v}");
        let arc = range
            .min_by_key(|&a| (self.state.last_used[self.state.g.arc_edge(a)], a))
            .expect("nonempty range");
        self.state.step_along(arc)
    }
}

/// Least-Used-First: traverse the incident edge with the fewest traversals.
/// Covers all edges in `O(m|D|)` and equalises traversal frequencies in the
/// long run (\[5\]).
#[derive(Debug, Clone)]
pub struct LeastUsedFirst<'g> {
    state: FairState<'g>,
}

impl<'g> LeastUsedFirst<'g> {
    /// Creates the explorer at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `start >= g.n()`.
    pub fn new(g: &'g Graph, start: Vertex) -> LeastUsedFirst<'g> {
        LeastUsedFirst {
            state: FairState::new(g, start),
        }
    }

    /// Times edge `e` has been traversed.
    ///
    /// # Panics
    ///
    /// Panics if `e >= g.m()`.
    pub fn use_count(&self, e: EdgeId) -> u64 {
        self.state.use_count[e]
    }
}

impl<'g> WalkProcess for LeastUsedFirst<'g> {
    fn graph(&self) -> &Graph {
        self.state.g
    }

    fn current(&self) -> Vertex {
        self.state.current
    }

    fn steps(&self) -> u64 {
        self.state.steps
    }

    fn advance(&mut self, mut rng: &mut dyn RngCore) -> Step {
        self.advance_rng(&mut rng)
    }

    fn advance_rng<R: RngCore>(&mut self, _rng: &mut R) -> Step {
        let v = self.state.current;
        let range = self.state.g.arc_range(v);
        assert!(!range.is_empty(), "explorer stuck at isolated vertex {v}");
        let arc = range
            .min_by_key(|&a| {
                let e = self.state.g.arc_edge(a);
                (self.state.use_count[e], self.state.last_used[e], a)
            })
            .expect("nonempty range");
        self.state.step_along(arc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eproc_graphs::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn both_are_deterministic() {
        let g = generators::torus2d(3, 3);
        let mut rng_a = SmallRng::seed_from_u64(1);
        let mut rng_b = SmallRng::seed_from_u64(2);
        let mut a = LeastUsedFirst::new(&g, 0);
        let mut b = LeastUsedFirst::new(&g, 0);
        for _ in 0..300 {
            assert_eq!(a.advance(&mut rng_a), b.advance(&mut rng_b));
        }
        let mut a = OldestFirst::new(&g, 0);
        let mut b = OldestFirst::new(&g, 0);
        for _ in 0..300 {
            assert_eq!(a.advance(&mut rng_a), b.advance(&mut rng_b));
        }
    }

    #[test]
    fn first_traversals_are_blue() {
        let g = generators::cycle(6);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut w = LeastUsedFirst::new(&g, 0);
        for _ in 0..g.m() {
            assert_eq!(w.advance(&mut rng).kind, StepKind::Blue);
        }
        assert_eq!(w.advance(&mut rng).kind, StepKind::Red);
    }

    #[test]
    fn least_used_covers_edges_in_m_diameter_steps() {
        // [5]: LUF covers all edges in O(m·D).
        for g in [
            generators::torus2d(4, 4),
            generators::complete(6),
            generators::petersen(),
        ] {
            let d = eproc_graphs::properties::diameter::diameter_exact(&g).unwrap() as u64;
            let bound = 10 * g.m() as u64 * (d + 1);
            let mut rng = SmallRng::seed_from_u64(4);
            let mut w = LeastUsedFirst::new(&g, 0);
            let mut covered = 0;
            let mut t = 0u64;
            let mut seen = vec![false; g.m()];
            while covered < g.m() {
                let s = w.advance(&mut rng);
                let e = s.edge.unwrap();
                if !seen[e] {
                    seen[e] = true;
                    covered += 1;
                }
                t += 1;
                assert!(t <= bound, "LUF exceeded O(mD) bound on {g:?}");
            }
        }
    }

    #[test]
    fn least_used_equalises_frequencies() {
        let g = generators::cycle(5);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut w = LeastUsedFirst::new(&g, 0);
        for _ in 0..5_000 {
            w.advance(&mut rng);
        }
        let counts: Vec<u64> = (0..g.m()).map(|e| w.use_count(e)).collect();
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(
            max - min <= max / 2,
            "LUF frequencies should be balanced: {counts:?}"
        );
    }

    #[test]
    fn oldest_first_covers_small_graphs() {
        // OF can be exponential in general but is fine on a small torus.
        let g = generators::torus2d(3, 3);
        let mut rng = SmallRng::seed_from_u64(6);
        let mut w = OldestFirst::new(&g, 0);
        let mut seen = vec![false; g.n()];
        seen[0] = true;
        let mut remaining = g.n() - 1;
        let mut t = 0u64;
        while remaining > 0 {
            let s = w.advance(&mut rng);
            if !seen[s.to] {
                seen[s.to] = true;
                remaining -= 1;
            }
            t += 1;
            assert!(t < 1_000_000);
        }
    }
}
