//! Degree predicates and statistics.

use crate::csr::Graph;

/// `true` if every vertex has the exact degree `r`.
pub fn is_regular(g: &Graph, r: usize) -> bool {
    g.vertices().all(|v| g.degree(v) == r)
}

/// `true` if the graph is `r`-regular for some `r` (returns that `r`).
pub fn regularity(g: &Graph) -> Option<usize> {
    if g.n() == 0 {
        return Some(0);
    }
    let r = g.degree(0);
    if is_regular(g, r) {
        Some(r)
    } else {
        None
    }
}

/// `true` if every vertex has even degree — the paper's standing
/// assumption ("we will henceforth always assume this is the case").
pub fn is_even_degree(g: &Graph) -> bool {
    g.vertices().all(|v| g.degree(v).is_multiple_of(2))
}

/// Histogram of degrees: `hist[d]` = number of vertices with degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in g.vertices() {
        hist[g.degree(v)] += 1;
    }
    hist
}

/// Mean degree `2m/n` (0 for the empty graph).
pub fn mean_degree(g: &Graph) -> f64 {
    if g.n() == 0 {
        return 0.0;
    }
    g.total_degree() as f64 / g.n() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::Graph;

    #[test]
    fn regular_families() {
        assert!(is_regular(&generators::cycle(6), 2));
        assert!(is_regular(&generators::hypercube(3), 3));
        assert!(is_regular(&generators::torus2d(4, 5), 4));
        assert_eq!(regularity(&generators::petersen()), Some(3));
    }

    #[test]
    fn irregular_graph() {
        let g = generators::star(4);
        assert!(!is_regular(&g, 1));
        assert_eq!(regularity(&g), None);
    }

    #[test]
    fn even_degree_families() {
        assert!(is_even_degree(&generators::cycle(9)));
        assert!(is_even_degree(&generators::torus2d(3, 3)));
        assert!(is_even_degree(&generators::hypercube(4)));
        assert!(!is_even_degree(&generators::hypercube(3)));
        assert!(!is_even_degree(&generators::petersen()));
    }

    #[test]
    fn histogram_and_mean() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]).unwrap();
        assert_eq!(degree_histogram(&g), vec![0, 1, 2, 1]);
        assert!((mean_degree(&g) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_conventions() {
        let g = Graph::from_edges(0, &[]).unwrap();
        assert_eq!(regularity(&g), Some(0));
        assert!(is_even_degree(&g));
        assert_eq!(mean_degree(&g), 0.0);
    }
}
