//! Quantitative predictions used by the paper's arguments and experiments.

/// Fitted constants from the paper's Figure 1: the normalised cover time
/// of the E-process on random `d`-regular graphs for odd `d` grows like
/// `c · n ln n` with these `c` ("determined by inspection").
pub const FIG1_FIT: [(usize, f64); 3] = [(3, 0.93), (5, 0.41), (7, 0.38)];

/// The fitted Figure 1 constant for degree `d`, if the paper reports one.
pub fn fig1_fitted_constant(d: usize) -> Option<f64> {
    FIG1_FIT.iter().find(|&&(deg, _)| deg == d).map(|&(_, c)| c)
}

/// Expected number of `k`-cycles in a random `r`-regular graph:
/// `E N_k → (r−1)^k / (2k)` as `n → ∞` (the paper's §4.2 writes
/// `E N_k = θ_k r^k / k`; this is the standard explicit form of the same
/// quantity).
///
/// # Panics
///
/// Panics if `k < 3` or `r < 2`.
pub fn expected_cycle_count_random_regular(r: usize, k: usize) -> f64 {
    assert!(k >= 3, "cycles have length at least 3");
    assert!(r >= 2, "need degree at least 2");
    ((r - 1) as f64).powi(k as i32) / (2.0 * k as f64)
}

/// §5's heuristic for random 3-regular graphs: the blue walk turns away
/// from a tree-like vertex at each of its 3 neighbours independently with
/// probability 1/2, stranding it as an isolated blue star with probability
/// `(1/2)³ = 1/8`; `E|I| ≈ n/8`.
///
/// This is an *upper* heuristic: it ignores that the embedded red walk can
/// visit the center first. Our measurements (EXPERIMENTS.md) find a
/// positive constant fraction a few times smaller.
pub fn star_fraction_heuristic_r3() -> f64 {
    0.125
}

/// Property (P1) / Friedman's theorem: whp a random `r`-regular graph has
/// second adjacency eigenvalue at most `2√(r−1) + ε`; in transition-matrix
/// normalisation, `λ ≤ (2√(r−1) + ε)/r`.
///
/// # Panics
///
/// Panics if `r < 3` or `eps < 0`.
pub fn friedman_lambda_bound(r: usize, eps: f64) -> f64 {
    assert!(r >= 3, "Friedman's bound needs r >= 3");
    assert!(eps >= 0.0, "eps must be nonnegative");
    (2.0 * ((r - 1) as f64).sqrt() + eps) / r as f64
}

/// §4.1: property (P2) implies random `r`-regular graphs (`r ≥ 4` even)
/// are `ℓ`-good with `ℓ = log n / (4 log(r e))`.
///
/// # Panics
///
/// Panics if `n < 2` or `r < 2`.
pub fn p2_l_good_bound(n: usize, r: usize) -> f64 {
    assert!(n >= 2, "need at least two vertices");
    assert!(r >= 2, "need degree at least 2");
    (n as f64).ln() / (4.0 * (r as f64 * std::f64::consts::E).ln())
}

/// The Ramanujan bound: an LPS graph `X^{p,q}` has all nontrivial
/// adjacency eigenvalues `≤ 2√p`, i.e. `λ ≤ 2√p/(p+1)` for the walk.
///
/// # Panics
///
/// Panics if `p < 2`.
pub fn ramanujan_lambda_bound(p: usize) -> f64 {
    assert!(p >= 2, "p must be at least 2");
    2.0 * (p as f64).sqrt() / (p as f64 + 1.0)
}

/// Hypercube facts used in §1's edge-cover discussion: `H_r` has
/// `λ_2 = 1 − 2/r`, `C_V(SRW) = Θ(n log n)` (Matthews) and
/// `C_E(SRW) = Θ(n log² n)`; the E-process improves edge cover to
/// `Θ(n log n)`. Returns `λ_2`.
///
/// # Panics
///
/// Panics if `r == 0`.
pub fn hypercube_lambda2(r: usize) -> f64 {
    assert!(r > 0, "dimension must be positive");
    1.0 - 2.0 / r as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_constants_present() {
        assert_eq!(fig1_fitted_constant(3), Some(0.93));
        assert_eq!(fig1_fitted_constant(5), Some(0.41));
        assert_eq!(fig1_fitted_constant(7), Some(0.38));
        assert_eq!(fig1_fitted_constant(4), None);
        assert_eq!(fig1_fitted_constant(6), None);
    }

    #[test]
    fn cycle_counts_grow_in_r_and_k() {
        assert!(
            expected_cycle_count_random_regular(6, 4) > expected_cycle_count_random_regular(4, 4)
        );
        assert!(
            expected_cycle_count_random_regular(4, 6) > expected_cycle_count_random_regular(4, 3)
        );
        // r = 4, k = 3: 27/6 = 4.5 triangles expected.
        assert!((expected_cycle_count_random_regular(4, 3) - 4.5).abs() < 1e-12);
    }

    #[test]
    fn friedman_bound_below_one() {
        for r in [3, 4, 5, 6, 7, 10] {
            let b = friedman_lambda_bound(r, 0.01);
            assert!(b < 1.0, "r = {r}: {b}");
            assert!(b > 0.0);
        }
        // Larger degree → better expansion.
        assert!(friedman_lambda_bound(8, 0.0) < friedman_lambda_bound(4, 0.0));
    }

    #[test]
    fn ramanujan_tighter_than_friedman_epsilon() {
        // For the same degree r = p + 1, the Ramanujan bound equals the
        // ε = 0 Friedman bound.
        let p = 5;
        let fr = friedman_lambda_bound(p + 1, 0.0);
        let rm = ramanujan_lambda_bound(p);
        assert!((fr - rm).abs() < 1e-12);
    }

    #[test]
    fn p2_bound_grows_with_n() {
        assert!(p2_l_good_bound(1_000_000, 4) > p2_l_good_bound(1_000, 4));
        assert!(p2_l_good_bound(1_000, 4) > p2_l_good_bound(1_000, 8));
    }

    #[test]
    fn hypercube_lambda_values() {
        assert!((hypercube_lambda2(10) - 0.8).abs() < 1e-12);
        assert_eq!(hypercube_lambda2(2), 0.0);
    }

    #[test]
    fn star_heuristic_is_one_eighth() {
        assert_eq!(star_fraction_heuristic_r3(), 0.125);
    }
}
