//! Telemetry must be a pure observer: artifacts byte-identical with the
//! sink on or off at any thread count, event streams structurally sound
//! (strict JSONL, schema-complete, conserved counts), and the summary
//! roll-up consistent with the report the run actually produced.

mod common;
use common::json;

use eproc_engine::executor::{run, run_with_sink, RunOptions};
use eproc_engine::report::to_json;
use eproc_engine::spec::{
    CapSpec, ExperimentSpec, GraphSpec, ProcessSpec, ResamplePlan, RuleSpec, Target,
};
use eproc_telemetry::{Event, EventKind, JsonlSink, SummarySink, Tee, TelemetrySink};
use std::sync::Mutex;

/// An in-memory sink recording every event, for structural assertions.
#[derive(Default)]
struct Collector {
    events: Mutex<Vec<Event>>,
}

impl Collector {
    fn take(&self) -> Vec<Event> {
        std::mem::take(&mut self.events.lock().unwrap())
    }
}

impl TelemetrySink for Collector {
    fn emit(&self, event: &Event) {
        self.events.lock().unwrap().push(event.clone());
    }
}

fn spec(resample: Option<ResamplePlan>) -> ExperimentSpec {
    ExperimentSpec {
        name: "telemetry-test".into(),
        description: "instrumented run".into(),
        graphs: vec![
            GraphSpec::Regular { n: 48, d: 3 },
            GraphSpec::Cycle { n: 32 },
        ],
        processes: vec![
            ProcessSpec::EProcess {
                rule: RuleSpec::Uniform,
            },
            ProcessSpec::Srw,
        ],
        trials: 6,
        target: Target::VertexCover,
        // No extra metrics: the walk stops exactly at vertex cover, so
        // every trial's walked-step count equals its cover time and the
        // event totals can be cross-checked against the report cells.
        metrics: vec![],
        start: 0,
        cap: CapSpec::Auto,
        resample,
    }
}

#[test]
fn artifacts_are_byte_identical_with_telemetry_on_or_off() {
    for resample in [None, Some(ResamplePlan { walks_per_graph: 2 })] {
        let spec = spec(resample);
        let mut baseline = None;
        for threads in [1, 4] {
            let opts = RunOptions {
                threads,
                base_seed: 4242,
            };
            let silent = to_json(&run(&spec, &opts).unwrap());
            let collector = Collector::default();
            let summary = SummarySink::new();
            let sinks: Vec<&dyn TelemetrySink> = vec![&collector, &summary];
            let observed = to_json(&run_with_sink(&spec, &opts, &Tee::new(sinks)).unwrap());
            assert_eq!(
                silent, observed,
                "telemetry perturbed the artifact (threads = {threads}, resample = {resample:?})"
            );
            match &baseline {
                None => baseline = Some(silent),
                Some(b) => assert_eq!(
                    b, &silent,
                    "thread-count invariance broke (resample = {resample:?})"
                ),
            }
            assert!(
                !collector.take().is_empty(),
                "enabled sink received no events"
            );
        }
    }
}

#[test]
fn event_stream_is_schema_complete_and_counts_conserve() {
    for (resample, threads) in [
        (None, 1),
        (None, 3),
        (Some(ResamplePlan { walks_per_graph: 2 }), 1),
        (Some(ResamplePlan { walks_per_graph: 3 }), 4),
    ] {
        let spec = spec(resample);
        let collector = Collector::default();
        let report = run_with_sink(
            &spec,
            &RunOptions {
                threads,
                base_seed: 7,
            },
            &collector,
        )
        .unwrap();
        let events = collector.take();

        // Bookends: exactly one run_started first, one run_finished last.
        assert_eq!(events.first().unwrap().kind.label(), "run_started");
        assert_eq!(events.last().unwrap().kind.label(), "run_finished");
        let count = |label: &str| events.iter().filter(|e| e.kind.label() == label).count();
        assert_eq!(count("run_started"), 1);
        assert_eq!(count("run_finished"), 1);
        assert_eq!(count("aggregation_merged"), 1);

        // Timestamps are monotone per producer; the bookends (both from
        // the main thread) bound the whole stream.
        let t_first = events.first().unwrap().t_ns;
        let t_last = events.last().unwrap().t_ns;
        assert!(events.iter().all(|e| e.t_ns >= t_first && e.t_ns <= t_last));

        // The announced block count matches what actually completed, and
        // the per-block trial/step tallies sum to the run totals.
        let EventKind::RunStarted {
            blocks,
            total_trials,
            resampled,
            ..
        } = &events[0].kind
        else {
            panic!("first event must be run_started");
        };
        assert_eq!(*resampled, resample.is_some());
        assert_eq!(count("block_completed"), *blocks);
        let (mut trials_sum, mut steps_sum) = (0u64, 0u64);
        for e in &events {
            if let EventKind::BlockCompleted {
                trials,
                steps,
                process,
                gen_ns,
                gen_attempts,
                ..
            } = &e.kind
            {
                trials_sum += trials;
                steps_sum += steps;
                // Blocks span every process in both modes.
                assert!(process.is_none());
                if resample.is_some() {
                    // Resample blocks generate their own graph.
                    assert!(*gen_attempts >= 1);
                } else {
                    // Shared-mode blocks run on a prebuilt graph: this
                    // spec's trial count fits one group, so each family
                    // is a single block covering all (trial × process)
                    // walks.
                    assert_eq!(*trials, (spec.trials * spec.processes.len()) as u64);
                    assert_eq!(*gen_ns, 0);
                    assert_eq!(*gen_attempts, 0);
                }
            }
        }
        assert_eq!(trials_sum, *total_trials);
        let EventKind::RunFinished {
            total_trials: finished_trials,
            total_steps,
            ..
        } = &events.last().unwrap().kind
        else {
            panic!("last event must be run_finished");
        };
        assert_eq!(trials_sum, *finished_trials);
        assert_eq!(steps_sum, *total_steps);

        // Both modes announce every block claim through the one streamed
        // path; shared mode still builds its graphs up front, resample
        // mode builds them inside blocks.
        assert_eq!(count("block_claimed"), *blocks);
        if resample.is_some() {
            assert_eq!(count("graph_built"), 0);
        } else {
            assert_eq!(count("graph_built"), spec.graphs.len());
        }

        // With Target::VertexCover every trial's step count is its
        // cover time, so the event totals must equal the report's own
        // per-cell summaries.
        let report_trials: u64 = report.cells.iter().map(|c| c.completed as u64).sum();
        let report_steps: f64 = report
            .cells
            .iter()
            .map(|c| c.steps.mean() * c.steps.count() as f64)
            .sum();
        assert_eq!(trials_sum, report_trials);
        assert!(
            (steps_sum as f64 - report_steps).abs() <= 1e-6 * report_steps.max(1.0),
            "event step total {steps_sum} != report step total {report_steps}"
        );
    }
}

#[test]
fn jsonl_log_is_strict_json_line_by_line() {
    let dir = std::env::temp_dir().join("eproc_engine_telemetry_test");
    let path = dir.join("events.jsonl");
    let jsonl = JsonlSink::create(&path).unwrap();
    run_with_sink(
        &spec(Some(ResamplePlan { walks_per_graph: 2 })),
        &RunOptions {
            threads: 2,
            base_seed: 11,
        },
        &jsonl,
    )
    .unwrap();
    jsonl.finish().unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 3, "expected a full event stream");
    for (i, line) in lines.iter().enumerate() {
        json::validate(line).unwrap_or_else(|e| panic!("line {}: {e}: {line}", i + 1));
        assert!(
            line.starts_with("{\"event\": \""),
            "schema tag must lead each line: {line}"
        );
    }
    assert!(lines[0].contains("\"event\": \"run_started\""));
    assert!(lines
        .last()
        .unwrap()
        .contains("\"event\": \"run_finished\""));
    assert!(text.contains("\"event\": \"block_completed\""));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn summary_sidecar_is_strict_json_and_matches_the_report() {
    let spec = spec(Some(ResamplePlan { walks_per_graph: 2 }));
    let summary = SummarySink::new();
    let report = run_with_sink(
        &spec,
        &RunOptions {
            threads: 4,
            base_seed: 23,
        },
        &summary,
    )
    .unwrap();
    let s = summary.summary();
    assert_eq!(s.run, spec.name);
    assert_eq!(s.workers, 4);
    assert!(s.resampled);
    assert_eq!(s.blocks_completed as usize, s.blocks_total);
    assert_eq!(s.cells, report.cells.len());
    assert_eq!(
        s.total_trials,
        report.cells.iter().map(|c| c.completed as u64).sum::<u64>()
    );
    assert!(s.wall_ns > 0);
    // Every block generated at least one graph attempt.
    assert!(s.gen_attempts >= s.blocks_completed);
    // Worker tallies partition the block/trial/step totals.
    assert_eq!(
        s.per_worker.iter().map(|w| w.blocks).sum::<u64>(),
        s.blocks_completed
    );
    assert_eq!(
        s.per_worker.iter().map(|w| w.trials).sum::<u64>(),
        s.total_trials
    );
    assert_eq!(
        s.per_worker.iter().map(|w| w.steps).sum::<u64>(),
        s.total_steps
    );

    let json_text = s.to_json();
    json::validate(&json_text).unwrap_or_else(|e| panic!("{e}:\n{json_text}"));
    assert!(!json_text.contains("inf") && !json_text.contains("NaN"));

    // The sidecar round-trips through save().
    let dir = std::env::temp_dir().join("eproc_engine_sidecar_test");
    let path = dir.join("report.telemetry.json");
    s.save(&path).unwrap();
    assert_eq!(std::fs::read_to_string(&path).unwrap(), json_text);
    let _ = std::fs::remove_dir_all(&dir);
}
