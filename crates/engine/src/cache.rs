//! Content-addressed artifact cache keyed by [`SpecDigest`].
//!
//! Every run is a pure function of its canonical spec, base seed,
//! quantile selection and artifact kind — the engine guarantees (and
//! CI pins) bit-identical artifacts across thread counts, shard
//! splits and resume points. That makes finished artifacts perfectly
//! cacheable: the CLI's `--cache DIR` (or the `EPROC_CACHE`
//! environment variable) consults a [`CacheStore`] before executing,
//! serves hits byte-identical to the run that populated them, and
//! stores misses after a successful run.
//!
//! # Layout
//!
//! ```text
//! <root>/<hh>/<64-hex-digest>.json   the artifact bytes, verbatim
//! <root>/<hh>/<64-hex-digest>.spec   sidecar: canonical line + key
//! ```
//!
//! where `<hh>` is the first two hex characters of the digest (a
//! git-style fan-out, keeping directories small). The `.spec` sidecar
//! is informational — `eproc cache ls` prints it so a digest can be
//! traced back to the experiment that produced it; lookups never
//! parse it.
//!
//! # Atomicity and safety
//!
//! Writes go through [`eproc_telemetry::write_atomic`] (temp sibling +
//! rename): a crash mid-store never leaves a truncated artifact, and
//! concurrent writers of the *same* digest race benignly — both write
//! identical bytes, the last rename wins. There is no locking and no
//! eviction policy beyond the explicit `eproc cache gc`.
//!
//! A cache entry is only correct if the digest preimage really covers
//! everything the bytes depend on — see [`crate::digest`] for the
//! contract and [`SPEC_DIGEST_VERSION`](crate::digest::SPEC_DIGEST_VERSION)
//! for how format changes invalidate old entries.

use crate::digest::SpecDigest;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Environment variable that roots the cache when `--cache DIR` is not
/// given. Setting it turns caching on for every `run`/`compare`/
/// `scale` invocation in that environment.
pub const CACHE_ENV: &str = "EPROC_CACHE";

/// One entry of [`CacheStore::entries`].
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// Full 64-hex digest (the file stem).
    pub digest: String,
    /// Artifact size in bytes.
    pub bytes: u64,
    /// First line of the `.spec` sidecar (the canonical spec line), or
    /// empty when the sidecar is missing.
    pub spec_line: String,
    /// Artifact modification time (eviction order for `gc`).
    pub modified: Option<std::time::SystemTime>,
}

/// Result of a [`CacheStore::gc`] sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcStats {
    /// Entries removed.
    pub removed: usize,
    /// Entries kept.
    pub kept: usize,
    /// Artifact bytes freed.
    pub freed_bytes: u64,
}

/// A content-addressed artifact store rooted at one directory.
#[derive(Debug, Clone)]
pub struct CacheStore {
    root: PathBuf,
}

impl CacheStore {
    /// Opens (without touching the filesystem) a store rooted at
    /// `root`. Directories are created lazily on first store.
    pub fn open(root: impl Into<PathBuf>) -> CacheStore {
        CacheStore { root: root.into() }
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Where the artifact for `digest` lives (whether or not present).
    pub fn artifact_path(&self, digest: &SpecDigest) -> PathBuf {
        let hex = digest.hex();
        self.root.join(&hex[..2]).join(format!("{hex}.json"))
    }

    fn sidecar_path(&self, digest: &SpecDigest) -> PathBuf {
        self.artifact_path(digest).with_extension("spec")
    }

    /// Loads the artifact bytes for `digest`, or `None` on a miss.
    ///
    /// # Errors
    ///
    /// Any I/O error other than the file not existing — a present but
    /// unreadable entry is a real error, not a miss.
    pub fn load(&self, digest: &SpecDigest) -> io::Result<Option<String>> {
        match fs::read_to_string(self.artifact_path(digest)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Stores `artifact` under `digest` with an informational `.spec`
    /// sidecar, both atomically. Returns the artifact path.
    ///
    /// # Errors
    ///
    /// Any I/O error creating directories or writing either file.
    pub fn store(&self, digest: &SpecDigest, artifact: &str, sidecar: &str) -> io::Result<PathBuf> {
        let path = self.artifact_path(digest);
        // Sidecar first: an artifact without a sidecar lists with an
        // empty spec line, but a sidecar without an artifact is
        // invisible (lookups go by artifact).
        eproc_telemetry::write_atomic(&self.sidecar_path(digest), sidecar)?;
        eproc_telemetry::write_atomic(&path, artifact)?;
        Ok(path)
    }

    /// Every entry in the store, sorted by digest. A missing or
    /// unreadable root directory lists as empty (a cache that was
    /// never written to is empty, not broken).
    ///
    /// # Errors
    ///
    /// I/O errors reading an existing fan-out directory.
    pub fn entries(&self) -> io::Result<Vec<CacheEntry>> {
        let mut entries = Vec::new();
        let fanouts = match fs::read_dir(&self.root) {
            Ok(rd) => rd,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(entries),
            Err(e) => return Err(e),
        };
        for fanout in fanouts {
            let fanout = fanout?;
            if !fanout.file_type()?.is_dir() {
                continue;
            }
            for file in fs::read_dir(fanout.path())? {
                let file = file?;
                let path = file.path();
                let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                    continue;
                };
                let is_artifact = path.extension().is_some_and(|e| e == "json")
                    && stem.len() == 64
                    && stem.bytes().all(|b| b.is_ascii_hexdigit());
                if !is_artifact {
                    continue;
                }
                let meta = file.metadata()?;
                let spec_line = fs::read_to_string(path.with_extension("spec"))
                    .ok()
                    .and_then(|s| s.lines().next().map(String::from))
                    .unwrap_or_default();
                entries.push(CacheEntry {
                    digest: stem.to_string(),
                    bytes: meta.len(),
                    spec_line,
                    modified: meta.modified().ok(),
                });
            }
        }
        entries.sort_by(|a, b| a.digest.cmp(&b.digest));
        Ok(entries)
    }

    /// Resolves a (possibly partial) lowercase hex digest to the
    /// artifact paths it matches, in digest order.
    ///
    /// # Errors
    ///
    /// I/O errors from [`CacheStore::entries`].
    pub fn resolve_prefix(&self, prefix: &str) -> io::Result<Vec<PathBuf>> {
        Ok(self
            .entries()?
            .into_iter()
            .filter(|e| e.digest.starts_with(prefix))
            .map(|e| {
                self.root
                    .join(&e.digest[..2])
                    .join(format!("{}.json", e.digest))
            })
            .collect())
    }

    /// Removes entries — oldest modification time first — until the
    /// artifacts remaining total at most `max_bytes` (`0` clears the
    /// store). Sidecars are removed with their artifacts.
    ///
    /// # Errors
    ///
    /// I/O errors listing or removing entries.
    pub fn gc(&self, max_bytes: u64) -> io::Result<GcStats> {
        let mut entries = self.entries()?;
        // Oldest first; digest tiebreak keeps the order deterministic
        // when timestamps collide (or are unavailable).
        entries.sort_by(|a, b| (a.modified, &a.digest).cmp(&(b.modified, &b.digest)));
        let total: u64 = entries.iter().map(|e| e.bytes).sum();
        let mut excess = total.saturating_sub(max_bytes);
        let mut stats = GcStats {
            removed: 0,
            kept: 0,
            freed_bytes: 0,
        };
        for entry in entries {
            if excess == 0 {
                stats.kept += 1;
                continue;
            }
            let path = self
                .root
                .join(&entry.digest[..2])
                .join(format!("{}.json", entry.digest));
            fs::remove_file(&path)?;
            // A missing sidecar is fine — remove best-effort.
            let _ = fs::remove_file(path.with_extension("spec"));
            excess = excess.saturating_sub(entry.bytes);
            stats.removed += 1;
            stats.freed_bytes += entry.bytes;
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::{sha256, spec_digest, ArtifactKind};
    use crate::spec::ExperimentSpec;

    fn temp_store(tag: &str) -> CacheStore {
        let dir =
            std::env::temp_dir().join(format!("eproc_cache_test_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        CacheStore::open(dir)
    }

    fn digest_of(line: &str) -> SpecDigest {
        let spec = ExperimentSpec::parse_cli(line).unwrap();
        spec_digest(&spec, 12345, &[0.5], ArtifactKind::Ensemble)
    }

    #[test]
    fn round_trips_bytes_verbatim() {
        let store = temp_store("roundtrip");
        let d = digest_of("--graph cycle:16 --process srw");
        assert_eq!(store.load(&d).unwrap(), None);
        store
            .store(&d, "{\"x\": 1}\n", "--graph cycle:16\n")
            .unwrap();
        assert_eq!(store.load(&d).unwrap().as_deref(), Some("{\"x\": 1}\n"));
        let entries = store.entries().unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].digest, d.hex());
        assert_eq!(entries[0].spec_line, "--graph cycle:16");
    }

    #[test]
    fn prefix_resolution_and_gc() {
        let store = temp_store("gc");
        let d1 = digest_of("--graph cycle:16 --process srw");
        let d2 = digest_of("--graph cycle:32 --process srw");
        store.store(&d1, "one", "l1").unwrap();
        store.store(&d2, "two!", "l2").unwrap();
        assert_eq!(store.resolve_prefix(&d1.short()).unwrap().len(), 1);
        assert_eq!(store.resolve_prefix("").unwrap().len(), 2);
        let stats = store.gc(0).unwrap();
        assert_eq!(stats.removed, 2);
        assert_eq!(stats.freed_bytes, 7);
        assert!(store.entries().unwrap().is_empty());
        assert_eq!(store.load(&d1).unwrap(), None);
    }

    #[test]
    fn gc_keeps_entries_under_the_budget() {
        let store = temp_store("budget");
        let d1 = digest_of("--graph cycle:16 --process srw");
        let d2 = digest_of("--graph cycle:32 --process srw");
        store.store(&d1, "aaaa", "l1").unwrap();
        store.store(&d2, "bbbb", "l2").unwrap();
        let stats = store.gc(4).unwrap();
        assert_eq!((stats.removed, stats.kept), (1, 1));
        assert_eq!(store.entries().unwrap().len(), 1);
    }

    #[test]
    fn missing_root_is_an_empty_store() {
        let store = temp_store("missing");
        assert!(store.entries().unwrap().is_empty());
        assert_eq!(store.gc(0).unwrap().removed, 0);
        let d = SpecDigest::from_bytes(sha256(b"x"));
        assert_eq!(store.load(&d).unwrap(), None);
    }
}
