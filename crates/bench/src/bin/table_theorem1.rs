//! **T-thm1**: Theorem 1 on even-degree expanders.
//!
//! `CV(E-process) = O(n + n log n / (ℓ(1−λmax)))`. For each graph we
//! measure `λmax` (Lanczos; lazy gap on bipartite graphs, per §2.1),
//! take the paper's `ℓ` estimate (P2 bound for random regular graphs,
//! girth for LPS), and report the measured-cover / bound ratio, which
//! should stay bounded by a modest constant across the sweep.

use eproc_bench::{mean_vertex_cover_steps, rng_for, save_table, Config, Scale};
use eproc_core::rule::UniformRule;
use eproc_core::EProcess;
use eproc_graphs::properties::{bipartite, girth};
use eproc_graphs::{generators, Graph};
use eproc_spectral::lanczos::lanczos;
use eproc_stats::{SeedSequence, TextTable};
use eproc_theory::{p2_l_good_bound, theorem1_vertex_cover_bound};

const REPS: usize = 5;

fn effective_gap(g: &Graph) -> f64 {
    let res = lanczos(g, 120.min(g.n() - 1));
    if bipartite::is_bipartite(g) {
        (1.0 - res.lambda_2()) / 2.0 // lazy walk gap
    } else {
        1.0 - res.lambda_max()
    }
}

fn main() {
    let config = Config::from_args();
    let seeds = SeedSequence::new(config.seed);
    println!("Theorem 1: CV(E) vs n + n*ln(n)/(l*(1-lambda_max)) on even-degree expanders\n");
    let mut table = TextTable::new(vec![
        "graph", "n", "gap", "l est", "CV mean", "bound", "CV/bound", "CV/n",
    ]);

    let regular_sizes: Vec<usize> = match config.scale {
        Scale::Quick => vec![1_000, 4_000, 16_000],
        Scale::Paper => vec![4_000, 16_000, 64_000, 256_000],
    };
    for &r in &[4usize, 6] {
        for &n in &regular_sizes {
            let mut graph_rng = rng_for(seeds.derive(&[r as u64, n as u64]));
            let g = generators::connected_random_regular(n, r, &mut graph_rng).unwrap();
            let gap = effective_gap(&g);
            let l = p2_l_good_bound(n, r);
            let bound = theorem1_vertex_cover_bound(n, l, gap);
            let mut walk_rng = rng_for(seeds.derive(&[r as u64, n as u64, 1]));
            let cap = (500.0 * n as f64 * (n as f64).ln()) as u64;
            let (mean, done) = mean_vertex_cover_steps(
                |_| EProcess::new(&g, 0, UniformRule::new()),
                REPS,
                cap,
                &mut walk_rng,
            );
            assert_eq!(done, REPS, "cover runs must finish");
            table.push_row(vec![
                format!("random {r}-regular"),
                n.to_string(),
                format!("{gap:.3}"),
                format!("{l:.2}"),
                format!("{mean:.0}"),
                format!("{bound:.0}"),
                format!("{:.3}", mean / bound),
                format!("{:.2}", mean / n as f64),
            ]);
        }
    }

    let lps_params: Vec<(u64, u64)> = match config.scale {
        Scale::Quick => vec![(5, 13), (5, 17)],
        Scale::Paper => vec![(5, 13), (5, 17), (5, 29)],
    };
    for &(p, q) in &lps_params {
        let g = generators::lps_ramanujan(p, q).unwrap();
        let n = g.n();
        let gap = effective_gap(&g);
        // An even subgraph through v contains a cycle through v, so
        // l(v) >= girth.
        let l = girth::girth_at_most(&g, 24).unwrap_or(24) as f64;
        let bound = theorem1_vertex_cover_bound(n, l, gap);
        let mut walk_rng = rng_for(seeds.derive(&[p, q, 2]));
        let cap = (500.0 * n as f64 * (n as f64).ln()) as u64;
        let (mean, done) = mean_vertex_cover_steps(
            |_| EProcess::new(&g, 0, UniformRule::new()),
            REPS,
            cap,
            &mut walk_rng,
        );
        assert_eq!(done, REPS);
        table.push_row(vec![
            format!("LPS({p},{q}) 6-regular"),
            n.to_string(),
            format!("{gap:.3}"),
            format!("{l:.0}"),
            format!("{mean:.0}"),
            format!("{bound:.0}"),
            format!("{:.3}", mean / bound),
            format!("{:.2}", mean / n as f64),
        ]);
    }
    println!("{table}");
    let p = save_table("table_theorem1", &table).expect("write csv");
    println!("csv: {}", p.display());
}
