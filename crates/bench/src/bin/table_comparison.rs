//! **T-cmp**: the E-process against every related process from §1:
//! simple random walk, rotor-router (Propp machine), RWC(2)
//! (Avin–Krishnamachari), Oldest-First and Least-Used-First locally fair
//! exploration — vertex cover times on an even-degree expander, a torus
//! and a random geometric graph.
//!
//! Thin wrapper over the `eproc-engine` built-in spec of the same name:
//! `eproc run comparison` is the CLI equivalent.

use eproc_bench::{run_engine_table, Config};

fn main() {
    let config = Config::from_args();
    println!("Process comparison: mean vertex cover time (CV)\n");
    run_engine_table("comparison", &config, "table_comparison");
}
