//! The unified `eproc` CLI: run, list and compare ensemble experiments.
//!
//! ```text
//! eproc run <spec> [--scale quick|paper] [--seed N] [--threads N]
//!                  [--trials N] [--metrics M[,M...]] [--resample [W]]
//!                  [--json PATH] [--csv PATH]
//! eproc list
//! eproc compare --graph G [--graph G ...] --process P[,P...]
//!               [--trials N] [--target T] [--metrics M[,M...]]
//!               [--start V] [--cap-nlogn F] [--resample [W]]
//!               [--seed N] [--threads N] [--json PATH]
//! ```
//!
//! `--metrics` attaches extra observers (`cover`, `blanket:<delta>`,
//! `phases`, `bluecensus`, `hitting[:v]`) to the same walk as the
//! target: each trial still walks the graph exactly once.
//!
//! `--resample [W]` — or a `~` marker in a `--graph` argument
//! (`regular:~1000,4`) — turns on per-trial graph resampling: each group
//! of `W` consecutive trials (default 1) gets its own freshly sampled
//! graph, and the report splits variance into pooled, across-graph and
//! within-graph components.

use eproc_engine::builtin;
use eproc_engine::executor::{run, RunOptions};
use eproc_engine::report::{save_json, to_text_table};
use eproc_engine::spec::{
    CapSpec, ExperimentSpec, GraphSpec, MetricSpec, ProcessSpec, ResamplePlan, Scale, Target,
};
use std::iter::Peekable;
use std::path::PathBuf;
use std::process::exit;
use std::time::Instant;

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "eproc — parallel ensemble-simulation engine for walk processes\n\
         \n\
         usage:\n\
         \x20 eproc run <spec> [--scale quick|paper] [--seed N] [--threads N]\n\
         \x20                  [--trials N] [--metrics M[,M...]] [--resample [W]]\n\
         \x20                  [--json PATH] [--csv PATH]\n\
         \x20 eproc list\n\
         \x20 eproc compare --graph G [--graph G ...] --process P[,P...]\n\
         \x20               [--trials N] [--target T] [--metrics M[,M...]]\n\
         \x20               [--start V] [--cap-nlogn F] [--resample [W]]\n\
         \x20               [--seed N] [--threads N] [--json PATH]\n\
         \n\
         graph syntax   regular:<n>,<d> | lps:<p>,<q> | geometric:<n>[,factor] |\n\
         \x20              hypercube:<dim> | torus:<w>,<h> | cycle:<n> | complete:<n> |\n\
         \x20              lollipop:<clique>,<path> | petersen | figure8:<len>\n\
         \x20              (a ~ before the arguments, e.g. regular:~1000,4, marks\n\
         \x20               the run for per-trial graph resampling)\n\
         process syntax eprocess[:rule] | srw | lazy | weighted | rotor | rwc:<d> |\n\
         \x20              oldest | leastused | vprocess\n\
         target syntax  vertex | edge | both | blanket:<delta>\n\
         metric syntax  cover | blanket[:delta] | phases | bluecensus | hitting[:v]\n\
         \x20              (all measured from the same walk: one pass per trial)\n\
         resampling     --resample [W]: every W consecutive trials (default 1)\n\
         \x20              share one freshly sampled graph; reports pooled,\n\
         \x20              across-graph and within-graph variance components\n\
         \n\
         built-in specs: {}",
        builtin::names().join(", ")
    );
    exit(if err.is_empty() { 0 } else { 2 });
}

#[derive(Debug, Default)]
struct CommonFlags {
    scale: Option<Scale>,
    seed: Option<u64>,
    threads: Option<usize>,
    trials: Option<usize>,
    metrics: Option<Vec<MetricSpec>>,
    resample: Option<ResamplePlan>,
    json: Option<PathBuf>,
    csv: Option<PathBuf>,
}

fn parse_u64(flag: &str, v: Option<String>) -> u64 {
    v.and_then(|s| s.parse().ok())
        .unwrap_or_else(|| usage(&format!("{flag} needs an integer")))
}

fn main() {
    let mut args = std::env::args().skip(1);
    let command = args.next().unwrap_or_else(|| usage("missing command"));
    match command.as_str() {
        "run" => cmd_run(args),
        "list" => cmd_list(),
        "compare" => cmd_compare(args),
        "--help" | "-h" | "help" => usage(""),
        other => usage(&format!("unknown command {other:?}")),
    }
}

fn cmd_list() {
    let mut table = eproc_stats::TextTable::new(vec![
        "spec",
        "graphs",
        "processes",
        "trials",
        "target",
        "description",
    ]);
    for name in builtin::names() {
        let s = builtin::spec(name, Scale::Quick).expect("listed specs exist");
        table.push_row(vec![
            name.to_string(),
            s.graphs.len().to_string(),
            s.processes.len().to_string(),
            s.trials.to_string(),
            s.target.label(),
            s.description.clone(),
        ]);
    }
    println!("{table}");
    println!("run one with: eproc run <spec> [--scale quick|paper] [--threads N]");
}

fn parse_common<I: Iterator<Item = String>>(
    flag: &str,
    args: &mut Peekable<I>,
    flags: &mut CommonFlags,
) -> bool {
    match flag {
        "--scale" => {
            let v = args.next().unwrap_or_default();
            flags.scale = Some(Scale::parse(&v).unwrap_or_else(|e| usage(&e.to_string())));
        }
        "--seed" => flags.seed = Some(parse_u64("--seed", args.next())),
        "--threads" => {
            let t = parse_u64("--threads", args.next()) as usize;
            if t == 0 {
                usage("--threads must be at least 1");
            }
            flags.threads = Some(t);
        }
        "--trials" => {
            let t = parse_u64("--trials", args.next()) as usize;
            if t == 0 {
                usage("--trials must be at least 1");
            }
            flags.trials = Some(t);
        }
        "--metrics" => {
            let v = args
                .next()
                .unwrap_or_else(|| usage("--metrics needs a value"));
            let parsed: Vec<MetricSpec> = v
                .split(',')
                .map(|part| MetricSpec::parse(part).unwrap_or_else(|e| usage(&e.to_string())))
                .collect();
            flags.metrics = Some(parsed);
        }
        "--resample" => {
            // Optional value: `--resample 3` groups every 3 trials on one
            // sampled graph; bare `--resample` resamples per trial. A
            // following non-integer token (the next flag, a spec name) is
            // left untouched.
            let walks = match args.peek().and_then(|v| v.parse::<usize>().ok()) {
                Some(w) => {
                    args.next();
                    if w == 0 {
                        usage("--resample walks-per-graph must be at least 1");
                    }
                    w
                }
                None => 1,
            };
            flags.resample = Some(ResamplePlan {
                walks_per_graph: walks,
            });
        }
        "--json" => flags.json = Some(PathBuf::from(require_path("--json", args.next()))),
        "--csv" => flags.csv = Some(PathBuf::from(require_path("--csv", args.next()))),
        _ => return false,
    }
    true
}

/// Validates a path-valued flag eagerly, so a forgotten value fails here
/// rather than after the whole experiment has run. A following flag
/// (`--json --threads …`) counts as a missing value.
fn require_path(flag: &str, v: Option<String>) -> String {
    match v {
        Some(p) if !p.is_empty() && !p.starts_with('-') => p,
        _ => usage(&format!("{flag} needs a path")),
    }
}

fn execute(mut spec: ExperimentSpec, flags: &CommonFlags) {
    if let Some(trials) = flags.trials {
        spec.trials = trials;
    }
    if let Some(metrics) = &flags.metrics {
        spec.metrics = metrics.clone();
    }
    if let Some(plan) = flags.resample {
        spec.resample = Some(plan);
    }
    let mut opts = RunOptions::auto();
    if let Some(threads) = flags.threads {
        opts.threads = threads;
    }
    if let Some(seed) = flags.seed {
        opts.base_seed = seed;
    }
    eprintln!(
        "running {:?}: {} jobs ({} graphs x {} processes x {} trials) on {} threads, seed {}",
        spec.name,
        spec.total_jobs(),
        spec.graphs.len(),
        spec.processes.len(),
        spec.trials,
        opts.threads,
        opts.base_seed
    );
    if let Some(plan) = spec.resample {
        eprintln!(
            "resampling graphs per trial group: {} graph sample(s) per family, {} walk(s) each",
            plan.groups(spec.trials),
            plan.walks_per_graph
        );
    }
    let started = Instant::now();
    let report = match run(&spec, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            exit(1);
        }
    };
    let elapsed = started.elapsed();
    println!(
        "{}: {} ({})\n",
        report.name,
        report.description,
        report.target.label()
    );
    let table = to_text_table(&report);
    println!("{table}");
    match save_json(&report, flags.json.as_deref()) {
        Ok(path) => println!("json: {}", path.display()),
        Err(e) => {
            eprintln!("error writing json artifact: {e}");
            exit(1);
        }
    }
    if let Some(csv) = &flags.csv {
        if let Some(parent) = csv.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        match std::fs::write(csv, table.to_csv()) {
            Ok(()) => println!("csv: {}", csv.display()),
            Err(e) => {
                eprintln!("error writing csv artifact: {e}");
                exit(1);
            }
        }
    }
    eprintln!("wall time: {:.2}s", elapsed.as_secs_f64());
}

fn cmd_run(args: impl Iterator<Item = String>) {
    let mut args = args.peekable();
    let mut name: Option<String> = None;
    let mut flags = CommonFlags::default();
    while let Some(arg) = args.next() {
        if parse_common(&arg, &mut args, &mut flags) {
            continue;
        }
        match arg.as_str() {
            "--help" | "-h" => usage(""),
            other if other.starts_with('-') => usage(&format!("unknown flag {other:?}")),
            other => {
                if name.replace(other.to_string()).is_some() {
                    usage("run takes exactly one spec name");
                }
            }
        }
    }
    let name = name.unwrap_or_else(|| usage("run needs a spec name"));
    let scale = flags.scale.unwrap_or(Scale::Quick);
    let spec = builtin::spec(&name, scale).unwrap_or_else(|| {
        usage(&format!(
            "unknown spec {name:?}; available: {}",
            builtin::names().join(", ")
        ))
    });
    execute(spec, &flags);
}

fn cmd_compare(args: impl Iterator<Item = String>) {
    let mut args = args.peekable();
    let mut graphs: Vec<GraphSpec> = Vec::new();
    let mut processes: Vec<ProcessSpec> = Vec::new();
    let mut marked_resample = false;
    let mut target = Target::VertexCover;
    let mut cap = CapSpec::Auto;
    let mut start = 0usize;
    let mut flags = CommonFlags::default();
    while let Some(arg) = args.next() {
        if parse_common(&arg, &mut args, &mut flags) {
            continue;
        }
        match arg.as_str() {
            "--graph" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("--graph needs a value"));
                for part in v.split(';') {
                    let (spec, marked) = GraphSpec::parse_with_resample(part)
                        .unwrap_or_else(|e| usage(&e.to_string()));
                    marked_resample |= marked;
                    graphs.push(spec);
                }
            }
            "--process" | "--processes" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("--process needs a value"));
                for part in v.split(',') {
                    processes
                        .push(ProcessSpec::parse(part).unwrap_or_else(|e| usage(&e.to_string())));
                }
            }
            "--target" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("--target needs a value"));
                target = Target::parse(&v).unwrap_or_else(|e| usage(&e.to_string()));
            }
            "--start" => {
                start = parse_u64("--start", args.next()) as usize;
            }
            "--cap-nlogn" => {
                let v = args.next().unwrap_or_default();
                let f: f64 = v
                    .parse()
                    .unwrap_or_else(|_| usage("--cap-nlogn needs a number"));
                cap = CapSpec::NLogN(f);
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other:?}")),
        }
    }
    if graphs.is_empty() {
        usage("compare needs at least one --graph");
    }
    if processes.is_empty() {
        usage("compare needs at least one --process");
    }
    let spec = ExperimentSpec {
        name: "compare".into(),
        description: "ad-hoc comparison built from CLI flags".into(),
        graphs,
        processes,
        trials: flags.trials.unwrap_or(5),
        target,
        metrics: flags.metrics.clone().unwrap_or_default(),
        start,
        cap,
        // `--resample [W]` wins; a bare `~` graph marker means per-trial.
        resample: flags
            .resample
            .or(marked_resample.then(ResamplePlan::per_trial)),
    };
    execute(spec, &flags);
}
