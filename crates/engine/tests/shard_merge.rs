//! Property tests for sharded execution: splitting a resampled run into
//! `k` shards — through the JSON artifact round trip — and merging them
//! back must reproduce the unsharded report **byte-for-byte**, for any
//! shard count, any thread counts, and any spec shape.
//!
//! This is the sharding analogue of `determinism.rs`: the contract is
//! not "statistically equivalent", it is the same artifact, so `cmp`
//! would pass on the files.

mod common;

use eproc_engine::executor::{run, RunOptions};
use eproc_engine::report::{to_json, to_json_with};
use eproc_engine::shard::{merge_shards, run_shard, ShardReport, ShardSpec};
use eproc_engine::spec::{
    CapSpec, ExperimentSpec, GraphSpec, MetricSpec, ProcessSpec, ResamplePlan, RuleSpec, Target,
};
use proptest::prelude::*;

/// A small but varied resampled spec: two graph families, three process
/// kinds, with the trials/walks_per_graph draw controlling whether
/// groups are full, ragged (last group short) or single-trial — all the
/// interleave-width selections the executor can make.
fn spec_for(trials: usize, walks_per_graph: usize, both_families: bool) -> ExperimentSpec {
    let mut graphs = vec![GraphSpec::Regular { n: 20, d: 3 }];
    if both_families {
        graphs.push(GraphSpec::Torus { w: 4, h: 5 });
    }
    ExperimentSpec {
        name: "shard-prop".into(),
        description: "sharding property-test spec".into(),
        graphs,
        processes: vec![
            ProcessSpec::EProcess {
                rule: RuleSpec::Uniform,
            },
            ProcessSpec::Srw,
            ProcessSpec::RotorRouter,
        ],
        trials,
        target: Target::VertexCover,
        metrics: vec![MetricSpec::Cover],
        start: 0,
        cap: CapSpec::Auto,
        resample: Some(ResamplePlan { walks_per_graph }),
    }
}

/// Runs every shard of a `k`-way split (each on its own thread count),
/// round-trips each artifact through its JSON form, merges, and returns
/// the merged report's JSON.
fn sharded_json(spec: &ExperimentSpec, base_seed: u64, k: usize) -> String {
    let shards: Vec<ShardReport> = (0..k)
        .map(|i| {
            let opts = RunOptions {
                threads: (i % 3) + 1,
                base_seed,
            };
            let shard = run_shard(spec, &opts, ShardSpec { index: i, count: k })
                .expect("shard run succeeds");
            let artifact = shard.to_json();
            common::json::validate(&artifact).expect("shard artifact is strict JSON");
            ShardReport::from_json(&artifact).expect("shard artifact round-trips")
        })
        .collect();
    to_json(&merge_shards(&shards).expect("complete shard set merges"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The headline contract: 2-way and 3-way splits both reproduce the
    /// unsharded artifact exactly, whatever the trial/group shape and
    /// whichever thread counts each shard happened to use.
    #[test]
    fn sharded_runs_merge_to_the_unsharded_artifact(
        seed in 0u64..1_000_000,
        trials in 1usize..8,
        walks_per_graph in 1usize..4,
        family_draw in 0usize..2,
        threads in 1usize..4,
    ) {
        let spec = spec_for(trials, walks_per_graph, family_draw == 1);
        let full = to_json(&run(&spec, &RunOptions { threads, base_seed: seed }).unwrap());
        for k in [2usize, 3] {
            prop_assert_eq!(&sharded_json(&spec, seed, k), &full);
        }
    }

    /// Degenerate split: one shard owning everything is just the run
    /// with a detour through the artifact format.
    #[test]
    fn single_shard_split_is_the_identity(
        seed in 0u64..1_000_000,
        trials in 1usize..6,
        walks_per_graph in 1usize..4,
    ) {
        let spec = spec_for(trials, walks_per_graph, true);
        let full = to_json(&run(&spec, &RunOptions { threads: 2, base_seed: seed }).unwrap());
        prop_assert_eq!(&sharded_json(&spec, seed, 1), &full);
    }
}

/// Any `--quantiles` selection renders byte-identically from the merged
/// report and the unsharded one: the shard artifacts carry the sketches'
/// raw bits, and the canonical merge fold reconstructs the exact sketch
/// state an uninterrupted run would hold — not just the default
/// p50/p90/p99 columns that `to_json` happens to print.
#[test]
fn custom_quantile_render_is_byte_identical_after_merge() {
    let spec = spec_for(5, 2, true);
    let seed = 4711;
    let full = run(
        &spec,
        &RunOptions {
            threads: 4,
            base_seed: seed,
        },
    )
    .unwrap();
    let k = 3;
    let shards: Vec<ShardReport> = (0..k)
        .map(|i| {
            let opts = RunOptions {
                threads: (i % 3) + 1,
                base_seed: seed,
            };
            let shard = run_shard(&spec, &opts, ShardSpec { index: i, count: k })
                .expect("shard run succeeds");
            ShardReport::from_json(&shard.to_json()).expect("shard artifact round-trips")
        })
        .collect();
    let merged = merge_shards(&shards).expect("complete shard set merges");
    let quantiles = [0.25, 0.5, 0.999];
    assert_eq!(
        to_json_with(&merged, None, &quantiles),
        to_json_with(&full, None, &quantiles)
    );
}
