//! **T-phase**: the blue/red phase structure behind the proofs.
//!
//! On even-degree graphs blue phases are long (the first one consumes a
//! constant fraction of the edges, Observation 10 lets it run until it
//! closes at the start); on odd-degree graphs the first blue phase dies at
//! the first revisit of an exhausted vertex — a birthday-paradox `Θ(√n)`
//! — which is why the E-process loses its linear-time behaviour there
//! (§5). This table makes that mechanism visible, together with the §5
//! isolated-star census (`stars/n → ≈ 1/8`-ish for `r = 3`).
//!
//! Thin engine wrapper: the built-in `phases` spec runs the ensemble with
//! phase and blue-census observers on one walk per trial; this binary
//! reshapes the metric columns into the paper's presentation.

use eproc_bench::{metric_mean, run_engine_spec, save_table, Config};
use eproc_engine::spec::GraphSpec;
use eproc_stats::TextTable;

fn main() {
    let config = Config::from_args();
    println!("Blue/red phase structure of the E-process on random r-regular graphs\n");
    let (spec, graphs, report) = run_engine_spec("phases", &config);
    let mut table = TextTable::new(vec![
        "r",
        "n",
        "first blue len",
        "first/sqrt(n)",
        "first/m",
        "#blue phases",
        "total blue/m",
        "stars/n",
        "closed (Obs 10)",
    ]);
    for (gi, (gspec, g)) in spec.graphs.iter().zip(&graphs).enumerate() {
        let GraphSpec::Regular { n, d: r } = *gspec else {
            panic!("phases spec contains only regular graphs")
        };
        let cell = &report.cells[gi];
        assert_eq!(
            cell.completed, cell.trials,
            "{}: edge cover not reached in every trial",
            cell.graph
        );
        let first = metric_mean(cell, "phases.first_blue");
        let blue_count = metric_mean(cell, "phases.blue_count");
        let total_blue = metric_mean(cell, "phases.total_blue");
        let closed = metric_mean(cell, "phases.closed");
        let stars = metric_mean(cell, "stars");
        if r % 2 == 0 {
            assert_eq!(closed, 1.0, "Observation 10 violated for even r = {r}");
        }
        let m = g.m() as f64;
        table.push_row(vec![
            r.to_string(),
            n.to_string(),
            format!("{first:.0}"),
            format!("{:.2}", first / (n as f64).sqrt()),
            format!("{:.3}", first / m),
            format!("{blue_count:.0}"),
            format!("{:.3}", total_blue / m),
            format!("{:.3}", stars / n as f64),
            if r % 2 == 0 {
                "yes".into()
            } else {
                "n/a (odd)".into()
            },
        ]);
    }
    println!("{table}");
    let p = save_table("table_phases", &table).expect("write csv");
    println!("csv: {}", p.display());
    let j = eproc_engine::report::save_json(&report, None).expect("write json");
    println!("json: {}", j.display());
}
