//! Effective resistance and the commute-time identity.
//!
//! Viewing the graph as a unit-resistor network, the commute time
//! satisfies `K(u, v) = 2m · R_eff(u, v)` (Chandra–Raghavan–Ruzzo–
//! Smolensky; the device behind Theorem 5's commute-time argument). We
//! compute `R_eff` by solving the Laplacian system directly and
//! cross-check the identity against [`crate::hitting`].

use crate::dense::solve_linear_system;
use eproc_graphs::{Graph, Vertex};

/// Effective resistance between `u` and `v` with unit resistances on the
/// edges (parallel edges act as parallel resistors). `None` if `u` and `v`
/// are disconnected or `u == v` (resistance 0 — returned as `Some(0.0)`).
///
/// Solves `L x = e_u − e_v` with the component grounded at `v`
/// (`O(n³)`; an exact oracle for small graphs).
///
/// # Panics
///
/// Panics if `u >= g.n()` or `v >= g.n()`.
pub fn effective_resistance(g: &Graph, u: Vertex, v: Vertex) -> Option<f64> {
    assert!(u < g.n() && v < g.n(), "vertex out of range");
    if u == v {
        return Some(0.0);
    }
    let n = g.n();
    // Ground v: solve the reduced Laplacian over V \ {v}.
    let free: Vec<Vertex> = (0..n).filter(|&x| x != v).collect();
    let mut index = vec![usize::MAX; n];
    for (i, &x) in free.iter().enumerate() {
        index[x] = i;
    }
    let k = free.len();
    let mut a = vec![0.0f64; k * k];
    for (i, &x) in free.iter().enumerate() {
        a[i * k + i] = g.degree(x) as f64;
    }
    for (_, p, q) in g.edges() {
        if p != v && q != v {
            a[index[p] * k + index[q]] -= 1.0;
            a[index[q] * k + index[p]] -= 1.0;
        }
    }
    let mut b = vec![0.0f64; k];
    b[index[u]] = 1.0;
    let x = solve_linear_system(a, b)?;
    // Potential at u minus potential at v (grounded: 0).
    Some(x[index[u]])
}

/// Sum of effective resistances over all edges; by Foster's theorem this
/// equals `n − c` where `c` is the number of connected components (for a
/// connected graph, `n − 1`). A strong global self-check for the solver.
pub fn foster_sum(g: &Graph) -> Option<f64> {
    let mut total = 0.0;
    for (_, u, v) in g.edges() {
        total += effective_resistance(g, u, v)?;
    }
    Some(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hitting::commute_time;
    use eproc_graphs::generators;

    #[test]
    fn series_resistors() {
        // Path 0-1-2: R(0,2) = 2.
        let g = generators::path(3);
        assert!((effective_resistance(&g, 0, 2).unwrap() - 2.0).abs() < 1e-9);
        assert!((effective_resistance(&g, 0, 1).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_resistors() {
        let g = eproc_graphs::Graph::from_edges(2, &[(0, 1), (0, 1)]).unwrap();
        assert!((effective_resistance(&g, 0, 1).unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn cycle_resistance() {
        // C_n between antipodes: two arcs of n/2 in parallel.
        let g = generators::cycle(8);
        let r = effective_resistance(&g, 0, 4).unwrap();
        assert!((r - 2.0).abs() < 1e-9, "R = {r}");
    }

    #[test]
    fn zero_for_same_vertex() {
        let g = generators::cycle(4);
        assert_eq!(effective_resistance(&g, 2, 2), Some(0.0));
    }

    #[test]
    fn disconnected_is_none() {
        let g = eproc_graphs::Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(effective_resistance(&g, 0, 2).is_none());
    }

    #[test]
    fn commute_time_identity() {
        // K(u,v) = 2m R_eff(u,v) — exactly, on assorted graphs.
        for g in [
            generators::lollipop(5, 3),
            generators::petersen(),
            generators::torus2d(3, 4),
            generators::figure_eight(4),
            generators::binary_tree(3),
        ] {
            let pairs = [(0, g.n() - 1), (0, g.n() / 2), (1, g.n() - 2)];
            for (u, v) in pairs {
                if u == v {
                    continue;
                }
                let k = commute_time(&g, u, v).unwrap();
                let r = effective_resistance(&g, u, v).unwrap();
                assert!(
                    (k - 2.0 * g.m() as f64 * r).abs() < 1e-6,
                    "identity fails on {g:?} at ({u},{v}): K = {k}, 2mR = {}",
                    2.0 * g.m() as f64 * r
                );
            }
        }
    }

    #[test]
    fn foster_theorem() {
        for g in [
            generators::cycle(9),
            generators::complete(6),
            generators::petersen(),
        ] {
            let sum = foster_sum(&g).unwrap();
            assert!(
                (sum - (g.n() as f64 - 1.0)).abs() < 1e-8,
                "Foster sum {sum} != n-1 = {}",
                g.n() - 1
            );
        }
    }
}
