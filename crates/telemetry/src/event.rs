//! The structured run events and their JSONL serialisation.

use std::fmt::Write as _;

/// Escapes a string for embedding in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a float as a strict-JSON number, degrading non-finite values
/// (which JSON cannot represent) to `null`.
pub(crate) fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".into()
    }
}

/// Which shard of a deterministically partitioned run a stream of events
/// belongs to: shard `index` of `count` owns the blocks congruent to
/// `index` mod `count`. Stamped onto [`EventKind::RunStarted`] by sharded
/// executors (`--shard i/k`); absent for ordinary runs, whose event
/// streams are byte-identical to pre-shard ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardId {
    /// This shard's index, `0 <= index < count`.
    pub index: usize,
    /// Total shards the run is partitioned into.
    pub count: usize,
}

/// One telemetry event, stamped with the monotonic time since the run
/// started (`t_ns`, from the emitter's [`crate::Stopwatch`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the run's telemetry clock started.
    pub t_ns: u64,
    /// What happened.
    pub kind: EventKind,
}

/// The event vocabulary. Fields are plain labels and integers so every
/// event serialises to one strict-JSON line with no knowledge of the
/// producer's types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A run began: the full shape of the work ahead.
    RunStarted {
        /// Experiment name.
        name: String,
        /// Graph families in the grid.
        graphs: usize,
        /// Processes in the grid.
        processes: usize,
        /// Trials per cell.
        trials: usize,
        /// Work units the pool will claim (see [`EventKind::BlockCompleted`]).
        blocks: usize,
        /// Total trials across the whole grid.
        total_trials: u64,
        /// Worker threads.
        workers: usize,
        /// Whether graphs are resampled per trial group.
        resampled: bool,
        /// Which shard of a partitioned run this is (`None` for
        /// unsharded runs; the field is then omitted from the JSONL form,
        /// keeping pre-shard streams byte-identical).
        shard: Option<ShardId>,
    },
    /// A shared-mode graph was built up front (before the pool starts).
    GraphBuilt {
        /// Family label of the built graph.
        graph: String,
        /// Vertex count.
        n: usize,
        /// Edge count.
        m: usize,
        /// Wall time spent generating, in nanoseconds.
        gen_ns: u64,
        /// Generator attempts consumed (restarts + 1; `1` for
        /// deterministic constructions).
        gen_attempts: u64,
    },
    /// A worker claimed a block and is about to generate/walk it.
    BlockClaimed {
        /// Canonical block index.
        block: usize,
        /// Graph family label.
        family: String,
        /// Resample group within the family.
        group: usize,
        /// Claiming worker id.
        worker: usize,
    },
    /// A worker finished a block: the per-unit-of-work record. Under
    /// resampling one block is one *(family, group)* unit (all processes
    /// × the group's trials on one freshly generated graph); in
    /// shared-graph mode one block is one trial and `process` names it.
    BlockCompleted {
        /// Canonical block index.
        block: usize,
        /// Graph family label.
        family: String,
        /// Resample group (resample mode) or trial index (shared mode).
        group: usize,
        /// Process label for shared-mode single-trial blocks; `None` for
        /// resample blocks, which span every process.
        process: Option<String>,
        /// Completing worker id.
        worker: usize,
        /// Trials run in this block.
        trials: u64,
        /// Walk steps simulated in this block (all trials).
        steps: u64,
        /// Nanoseconds spent generating the block's graph (`0` in shared
        /// mode, where graphs are prebuilt).
        gen_ns: u64,
        /// Generator attempts consumed (`0` in shared mode).
        gen_attempts: u64,
        /// Nanoseconds spent walking (all the block's trials).
        walk_ns: u64,
    },
    /// The main thread merged every block into the report cells.
    AggregationMerged {
        /// Work units merged.
        blocks: usize,
        /// Report cells produced.
        cells: usize,
        /// Nanoseconds the merge took.
        agg_ns: u64,
    },
    /// The run completed.
    RunFinished {
        /// Total wall time, in nanoseconds.
        wall_ns: u64,
        /// Total trials executed.
        total_trials: u64,
        /// Total walk steps simulated.
        total_steps: u64,
    },
    /// Shard artifacts were combined into one report (`eproc merge`) —
    /// the merge stage of a sharded run.
    MergeCompleted {
        /// Shard artifacts merged.
        shards: usize,
        /// Blocks reassembled across all shards.
        blocks: usize,
        /// Report cells produced.
        cells: usize,
        /// Nanoseconds the merge took.
        merge_ns: u64,
    },
    /// A run checkpoint was persisted (`--checkpoint`): every block
    /// completed so far is now durable.
    CheckpointWritten {
        /// Blocks the checkpoint holds.
        blocks: usize,
        /// Total blocks the run schedules.
        total: usize,
        /// Bytes the checkpoint artifact serialised to.
        bytes: u64,
        /// Nanoseconds spent serialising and writing.
        checkpoint_ns: u64,
    },
    /// A block attempt failed (panic or graph-generation error) and the
    /// executor is deterministically re-running it (`--retry-blocks`).
    BlockRetried {
        /// Canonical block index.
        block: usize,
        /// Graph family label.
        family: String,
        /// Resample group within the family.
        group: usize,
        /// Worker id re-running the block.
        worker: usize,
        /// The attempt that failed (0-based; the retry is `attempt + 1`).
        attempt: usize,
        /// Human-readable description of the failure.
        error: String,
    },
    /// The run stopped early at a block boundary — SIGINT/SIGTERM or the
    /// `--max-wall` deadline — after draining in-flight blocks and
    /// writing a final checkpoint. The run is resumable.
    RunInterrupted {
        /// Why the run stopped (`"signal"` or `"deadline"`).
        reason: String,
        /// Blocks completed (and checkpointed) before the stop.
        completed: usize,
        /// Total blocks the run schedules.
        total: usize,
    },
}

impl EventKind {
    /// The event's schema tag — the `"event"` field of its JSONL form.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::RunStarted { .. } => "run_started",
            EventKind::GraphBuilt { .. } => "graph_built",
            EventKind::BlockClaimed { .. } => "block_claimed",
            EventKind::BlockCompleted { .. } => "block_completed",
            EventKind::AggregationMerged { .. } => "aggregation_merged",
            EventKind::RunFinished { .. } => "run_finished",
            EventKind::MergeCompleted { .. } => "merge_completed",
            EventKind::CheckpointWritten { .. } => "checkpoint_written",
            EventKind::BlockRetried { .. } => "block_retried",
            EventKind::RunInterrupted { .. } => "run_interrupted",
        }
    }
}

impl Event {
    /// Serialises the event as one strict RFC-8259 JSON object (no
    /// trailing newline). Every value is a string, an integer or a
    /// boolean — non-finite floats cannot occur by construction.
    pub fn to_jsonl(&self) -> String {
        let mut out = format!(
            "{{\"event\": \"{}\", \"t_ns\": {}",
            self.kind.label(),
            self.t_ns
        );
        match &self.kind {
            EventKind::RunStarted {
                name,
                graphs,
                processes,
                trials,
                blocks,
                total_trials,
                workers,
                resampled,
                shard,
            } => {
                let _ = write!(
                    out,
                    ", \"name\": \"{}\", \"graphs\": {graphs}, \"processes\": {processes}, \
                     \"trials\": {trials}, \"blocks\": {blocks}, \"total_trials\": {total_trials}, \
                     \"workers\": {workers}, \"resampled\": {resampled}",
                    json_escape(name)
                );
                if let Some(shard) = shard {
                    let _ = write!(
                        out,
                        ", \"shard_index\": {}, \"shard_count\": {}",
                        shard.index, shard.count
                    );
                }
            }
            EventKind::GraphBuilt {
                graph,
                n,
                m,
                gen_ns,
                gen_attempts,
            } => {
                let _ = write!(
                    out,
                    ", \"graph\": \"{}\", \"n\": {n}, \"m\": {m}, \"gen_ns\": {gen_ns}, \
                     \"gen_attempts\": {gen_attempts}",
                    json_escape(graph)
                );
            }
            EventKind::BlockClaimed {
                block,
                family,
                group,
                worker,
            } => {
                let _ = write!(
                    out,
                    ", \"block\": {block}, \"family\": \"{}\", \"group\": {group}, \
                     \"worker\": {worker}",
                    json_escape(family)
                );
            }
            EventKind::BlockCompleted {
                block,
                family,
                group,
                process,
                worker,
                trials,
                steps,
                gen_ns,
                gen_attempts,
                walk_ns,
            } => {
                let _ = write!(
                    out,
                    ", \"block\": {block}, \"family\": \"{}\", \"group\": {group}",
                    json_escape(family)
                );
                if let Some(p) = process {
                    let _ = write!(out, ", \"process\": \"{}\"", json_escape(p));
                }
                let _ = write!(
                    out,
                    ", \"worker\": {worker}, \"trials\": {trials}, \"steps\": {steps}, \
                     \"gen_ns\": {gen_ns}, \"gen_attempts\": {gen_attempts}, \"walk_ns\": {walk_ns}"
                );
            }
            EventKind::AggregationMerged {
                blocks,
                cells,
                agg_ns,
            } => {
                let _ = write!(
                    out,
                    ", \"blocks\": {blocks}, \"cells\": {cells}, \"agg_ns\": {agg_ns}"
                );
            }
            EventKind::RunFinished {
                wall_ns,
                total_trials,
                total_steps,
            } => {
                let _ = write!(
                    out,
                    ", \"wall_ns\": {wall_ns}, \"total_trials\": {total_trials}, \
                     \"total_steps\": {total_steps}"
                );
            }
            EventKind::MergeCompleted {
                shards,
                blocks,
                cells,
                merge_ns,
            } => {
                let _ = write!(
                    out,
                    ", \"shards\": {shards}, \"blocks\": {blocks}, \"cells\": {cells}, \
                     \"merge_ns\": {merge_ns}"
                );
            }
            EventKind::CheckpointWritten {
                blocks,
                total,
                bytes,
                checkpoint_ns,
            } => {
                let _ = write!(
                    out,
                    ", \"blocks\": {blocks}, \"total\": {total}, \"bytes\": {bytes}, \
                     \"checkpoint_ns\": {checkpoint_ns}"
                );
            }
            EventKind::BlockRetried {
                block,
                family,
                group,
                worker,
                attempt,
                error,
            } => {
                let _ = write!(
                    out,
                    ", \"block\": {block}, \"family\": \"{}\", \"group\": {group}, \
                     \"worker\": {worker}, \"attempt\": {attempt}, \"error\": \"{}\"",
                    json_escape(family),
                    json_escape(error)
                );
            }
            EventKind::RunInterrupted {
                reason,
                completed,
                total,
            } => {
                let _ = write!(
                    out,
                    ", \"reason\": \"{}\", \"completed\": {completed}, \"total\": {total}",
                    json_escape(reason)
                );
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_lines_have_the_schema_tag_first() {
        let e = Event {
            t_ns: 42,
            kind: EventKind::RunFinished {
                wall_ns: 100,
                total_trials: 7,
                total_steps: 900,
            },
        };
        assert_eq!(
            e.to_jsonl(),
            "{\"event\": \"run_finished\", \"t_ns\": 42, \"wall_ns\": 100, \
             \"total_trials\": 7, \"total_steps\": 900}"
        );
    }

    #[test]
    fn labels_are_escaped() {
        let e = Event {
            t_ns: 0,
            kind: EventKind::BlockClaimed {
                block: 0,
                family: "weird \"family\"\n".into(),
                group: 1,
                worker: 2,
            },
        };
        let line = e.to_jsonl();
        assert!(line.contains("weird \\\"family\\\"\\n"), "{line}");
        assert!(!line.contains('\n'), "JSONL lines must be single-line");
    }

    #[test]
    fn optional_process_field_is_omitted_when_absent() {
        let kind = EventKind::BlockCompleted {
            block: 3,
            family: "cycle n=8".into(),
            group: 0,
            process: None,
            worker: 1,
            trials: 4,
            steps: 32,
            gen_ns: 5,
            gen_attempts: 1,
            walk_ns: 6,
        };
        let line = Event { t_ns: 1, kind }.to_jsonl();
        assert!(!line.contains("\"process\""), "{line}");
        assert!(line.contains("\"gen_attempts\": 1"), "{line}");
    }

    #[test]
    fn shard_id_is_omitted_for_unsharded_runs() {
        let kind = |shard| EventKind::RunStarted {
            name: "sweep".into(),
            graphs: 1,
            processes: 2,
            trials: 6,
            blocks: 6,
            total_trials: 12,
            workers: 3,
            resampled: true,
            shard,
        };
        let plain = Event {
            t_ns: 0,
            kind: kind(None),
        }
        .to_jsonl();
        assert!(!plain.contains("shard"), "{plain}");
        let sharded = Event {
            t_ns: 0,
            kind: kind(Some(ShardId { index: 1, count: 4 })),
        }
        .to_jsonl();
        assert!(
            sharded.contains("\"shard_index\": 1, \"shard_count\": 4"),
            "{sharded}"
        );
    }

    #[test]
    fn merge_completed_serialises() {
        let e = Event {
            t_ns: 9,
            kind: EventKind::MergeCompleted {
                shards: 2,
                blocks: 12,
                cells: 4,
                merge_ns: 777,
            },
        };
        assert_eq!(
            e.to_jsonl(),
            "{\"event\": \"merge_completed\", \"t_ns\": 9, \"shards\": 2, \"blocks\": 12, \
             \"cells\": 4, \"merge_ns\": 777}"
        );
    }

    #[test]
    fn recovery_events_serialise() {
        let cp = Event {
            t_ns: 3,
            kind: EventKind::CheckpointWritten {
                blocks: 4,
                total: 12,
                bytes: 2048,
                checkpoint_ns: 555,
            },
        };
        assert_eq!(
            cp.to_jsonl(),
            "{\"event\": \"checkpoint_written\", \"t_ns\": 3, \"blocks\": 4, \"total\": 12, \
             \"bytes\": 2048, \"checkpoint_ns\": 555}"
        );
        let retry = Event {
            t_ns: 5,
            kind: EventKind::BlockRetried {
                block: 7,
                family: "regular n=24 d=3".into(),
                group: 1,
                worker: 2,
                attempt: 0,
                error: "injected \"panic\"".into(),
            },
        };
        let line = retry.to_jsonl();
        assert!(
            line.starts_with("{\"event\": \"block_retried\", \"t_ns\": 5"),
            "{line}"
        );
        assert!(line.contains("\"attempt\": 0"), "{line}");
        assert!(line.contains("injected \\\"panic\\\""), "{line}");
        let int = Event {
            t_ns: 9,
            kind: EventKind::RunInterrupted {
                reason: "signal".into(),
                completed: 3,
                total: 12,
            },
        };
        assert_eq!(
            int.to_jsonl(),
            "{\"event\": \"run_interrupted\", \"t_ns\": 9, \"reason\": \"signal\", \
             \"completed\": 3, \"total\": 12}"
        );
    }

    #[test]
    fn json_num_degrades_non_finite_to_null() {
        assert_eq!(json_num(1.5), "1.5");
        assert_eq!(json_num(f64::NAN), "null");
        assert_eq!(json_num(f64::INFINITY), "null");
    }
}
