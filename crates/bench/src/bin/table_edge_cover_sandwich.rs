//! **T-eq3**: the edge-cover sandwich `m ≤ CE(E) ≤ m + CV(SRW)`
//! (equation (3) / Observation 12) on even-degree graphs.

use eproc_bench::{edge_cover_runs, mean_vertex_cover_steps, rng_for, save_table, Config, Scale};
use eproc_core::rule::UniformRule;
use eproc_core::srw::SimpleRandomWalk;
use eproc_core::EProcess;
use eproc_graphs::{generators, Graph};
use eproc_stats::{SeedSequence, Summary, TextTable};

const REPS: usize = 5;

fn main() {
    let config = Config::from_args();
    let seeds = SeedSequence::new(config.seed);
    println!("Equation (3): m <= CE(E-process) <= m + CV(SRW) on even-degree graphs\n");
    let mut table = TextTable::new(vec![
        "graph",
        "n",
        "m",
        "CE(E) mean",
        "CV(SRW) mean",
        "m + CV(SRW)",
        "CE in sandwich",
    ]);

    let (cyc, tor, reg_n) = match config.scale {
        Scale::Quick => (2_000, 24, 2_000),
        Scale::Paper => (20_000, 64, 20_000),
    };
    let mut graph_rng = rng_for(seeds.derive(&[0]));
    let graphs: Vec<(String, Graph)> = vec![
        (format!("cycle({cyc})"), generators::cycle(cyc)),
        (format!("torus {tor}x{tor}"), generators::torus2d(tor, tor)),
        ("complete(63)".into(), generators::complete(63)),
        (
            format!("random 4-regular({reg_n})"),
            generators::connected_random_regular(reg_n, 4, &mut graph_rng).unwrap(),
        ),
        (
            format!("random 6-regular({reg_n})"),
            generators::connected_random_regular(reg_n, 6, &mut graph_rng).unwrap(),
        ),
        ("hypercube(10)".into(), generators::hypercube(10)),
    ];

    for (name, g) in &graphs {
        let n = g.n();
        let m = g.m();
        let cap = 100_000_000u64;
        let mut rng = rng_for(seeds.derive(&[1, n as u64, m as u64]));
        let runs = edge_cover_runs(
            |_| EProcess::new(g, 0, UniformRule::new()),
            REPS,
            cap,
            &mut rng,
        );
        let ce: Vec<u64> = runs.iter().filter_map(|r| r.steps_to_edge_cover).collect();
        assert_eq!(ce.len(), REPS, "{name}: edge cover must finish");
        let ce_summary = Summary::from_u64(&ce);
        let (cv_srw, done) =
            mean_vertex_cover_steps(|_| SimpleRandomWalk::new(g, 0), REPS, cap, &mut rng);
        assert_eq!(done, REPS);
        let lower_ok = ce_summary.mean >= m as f64;
        // The upper bound holds in expectation; per-run noise allowed.
        let upper_ok = ce_summary.mean <= m as f64 + cv_srw * 1.5;
        assert!(lower_ok, "{name}: CE {} below m {m}", ce_summary.mean);
        table.push_row(vec![
            name.clone(),
            n.to_string(),
            m.to_string(),
            format!("{:.0}", ce_summary.mean),
            format!("{cv_srw:.0}"),
            format!("{:.0}", m as f64 + cv_srw),
            if lower_ok && upper_ok {
                "yes".into()
            } else {
                "check".into()
            },
        ]);
    }
    println!("{table}");
    let p = save_table("table_edge_cover_sandwich", &table).expect("write csv");
    println!("csv: {}", p.display());
}
