//! MT19937 — the Mersenne Twister.
//!
//! The paper's experiments (§5) "used Python's built-in random number
//! generator which is based upon the Mersenne Twister". This is a from-
//! scratch implementation of the reference 32-bit MT19937 (Matsumoto &
//! Nishimura), validated against the canonical test vector, wired into the
//! `rand` ecosystem through [`rand::RngCore`] so any experiment can opt
//! into generator-faithful reproduction with `--rng mt19937`.

use rand::RngCore;

const N: usize = 624;
const M: usize = 397;
const MATRIX_A: u32 = 0x9908_b0df;
const UPPER_MASK: u32 = 0x8000_0000;
const LOWER_MASK: u32 = 0x7fff_ffff;

/// The MT19937 generator. Not cryptographically secure — it is the
/// simulation RNG the paper used.
#[derive(Clone)]
pub struct Mt19937 {
    state: [u32; N],
    index: usize,
}

impl std::fmt::Debug for Mt19937 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Mt19937 {{ index: {} }}", self.index)
    }
}

impl Mt19937 {
    /// Seeds the generator exactly as the reference `init_genrand`.
    pub fn new(seed: u32) -> Mt19937 {
        let mut state = [0u32; N];
        state[0] = seed;
        for i in 1..N {
            state[i] = 1_812_433_253u32
                .wrapping_mul(state[i - 1] ^ (state[i - 1] >> 30))
                .wrapping_add(i as u32);
        }
        Mt19937 { state, index: N }
    }

    /// The reference default seed (5489), matching `genrand_int32` test
    /// vectors published with the original C implementation.
    pub fn new_default() -> Mt19937 {
        Mt19937::new(5489)
    }

    fn twist(&mut self) {
        for i in 0..N {
            let y = (self.state[i] & UPPER_MASK) | (self.state[(i + 1) % N] & LOWER_MASK);
            let mut next = self.state[(i + M) % N] ^ (y >> 1);
            if y & 1 != 0 {
                next ^= MATRIX_A;
            }
            self.state[i] = next;
        }
        self.index = 0;
    }

    /// Next raw 32-bit output (`genrand_int32`).
    pub fn next_int32(&mut self) -> u32 {
        if self.index >= N {
            self.twist();
        }
        let mut y = self.state[self.index];
        self.index += 1;
        y ^= y >> 11;
        y ^= (y << 7) & 0x9d2c_5680;
        y ^= (y << 15) & 0xefc6_0000;
        y ^ (y >> 18)
    }

    /// A float in `[0, 1)` with 53-bit resolution (`genrand_res53`), the
    /// same construction Python's `random.random()` uses.
    pub fn next_f64(&mut self) -> f64 {
        let a = (self.next_int32() >> 5) as u64; // 27 bits
        let b = (self.next_int32() >> 6) as u64; // 26 bits
        (a as f64 * 67_108_864.0 + b as f64) / 9_007_199_254_740_992.0
    }
}

impl RngCore for Mt19937 {
    fn next_u32(&mut self) -> u32 {
        self.next_int32()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_int32() as u64;
        let hi = self.next_int32() as u64;
        (hi << 32) | lo
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let word = self.next_int32().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// First ten outputs of the reference implementation with the default
    /// seed 5489.
    const REFERENCE_5489: [u32; 10] = [
        3_499_211_612,
        581_869_302,
        3_890_346_734,
        3_586_334_585,
        545_404_204,
        4_161_255_391,
        3_922_919_429,
        949_333_985,
        2_715_962_298,
        1_323_567_403,
    ];

    #[test]
    fn matches_reference_vector() {
        let mut mt = Mt19937::new_default();
        for (i, &want) in REFERENCE_5489.iter().enumerate() {
            assert_eq!(mt.next_int32(), want, "output {i}");
        }
    }

    #[test]
    fn explicit_seed_5489_equals_default() {
        let mut a = Mt19937::new(5489);
        let mut b = Mt19937::new_default();
        for _ in 0..100 {
            assert_eq!(a.next_int32(), b.next_int32());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Mt19937::new(1);
        let mut b = Mt19937::new(2);
        let same = (0..32).filter(|_| a.next_int32() == b.next_int32()).count();
        assert!(same < 2);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut mt = Mt19937::new(7);
        for _ in 0..1000 {
            let x = mt.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut mt = Mt19937::new(42);
        let k = 20_000;
        let mean: f64 = (0..k).map(|_| mt.next_f64()).sum::<f64>() / k as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn rngcore_integration() {
        let mut mt = Mt19937::new(9);
        // Usable through the standard rand traits.
        let x: u64 = mt.gen_range(0..100u64);
        assert!(x < 100);
        let mut bytes = [0u8; 7];
        mt.fill_bytes(&mut bytes);
        // Deterministic given the seed.
        let mut mt2 = Mt19937::new(9);
        let y: u64 = mt2.gen_range(0..100u64);
        assert_eq!(x, y);
    }

    #[test]
    fn next_u64_combines_two_words() {
        let mut a = Mt19937::new(5489);
        let mut b = Mt19937::new(5489);
        let lo = b.next_u32() as u64;
        let hi = b.next_u32() as u64;
        assert_eq!(a.next_u64(), (hi << 32) | lo);
    }

    #[test]
    fn debug_hides_state() {
        let mt = Mt19937::new(3);
        let s = format!("{mt:?}");
        assert!(s.contains("Mt19937"));
        assert!(s.len() < 64);
    }
}
