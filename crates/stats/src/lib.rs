//! Statistics utilities for the `eproc` experiment harness.
//!
//! * [`summary`] — descriptive statistics with confidence intervals;
//! * [`online`] — Welford streaming accumulator;
//! * [`regression`] — least-squares fits, in particular `y = c · n ln n`
//!   (the model the paper fits to Figure 1's odd-degree series);
//! * [`scaling`] — competing growth-model fits (`c·m`, `a+b·m`,
//!   `c·n ln n`) with residual-based model selection, the statistical
//!   core of the `eproc scale` size-sweep subsystem;
//! * [`sketch`] — deterministic mergeable quantile sketches (tail
//!   statistics without per-trial buffering);
//! * [`table`] — plain-text/CSV table rendering for the experiment
//!   binaries;
//! * [`seeds`] — SplitMix64 seed derivation so every table cell is
//!   reproducible from one base seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod online;
pub mod regression;
pub mod scaling;
pub mod seeds;
pub mod sketch;
pub mod summary;
pub mod table;

pub use histogram::Histogram;
pub use online::OnlineStats;
pub use regression::{
    fit_c_nlogn, fit_linear, fit_proportional, try_fit_c_nlogn, try_fit_linear,
    try_fit_proportional, FitError,
};
pub use scaling::{fit_growth_models, GrowthModel, GrowthSelection, ModelFit, ScalingPoint};
pub use seeds::SeedSequence;
pub use sketch::{QuantileSketch, SketchRaw};
pub use summary::{EmptySample, Summary};
pub use table::TextTable;
