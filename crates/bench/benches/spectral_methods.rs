//! Eigenvalue-gap computation: power iteration vs Lanczos vs dense Jacobi.

use criterion::{criterion_group, criterion_main, Criterion};
use eproc_bench::rng_for;
use eproc_graphs::generators;
use eproc_spectral::dense::SymMatrix;
use eproc_spectral::lanczos::lanczos;
use eproc_spectral::power::{spectral_gap, PowerOptions};

fn bench_spectral(c: &mut Criterion) {
    let mut graph_rng = rng_for(1);
    let big = generators::connected_random_regular(2_000, 4, &mut graph_rng).unwrap();
    let small = generators::connected_random_regular(200, 4, &mut graph_rng).unwrap();
    let mut group = c.benchmark_group("spectral_methods");
    group.sample_size(10);

    group.bench_function("power_iteration_n2000", |b| {
        b.iter(|| std::hint::black_box(spectral_gap(&big, PowerOptions::default())))
    });
    group.bench_function("lanczos120_n2000", |b| {
        b.iter(|| std::hint::black_box(lanczos(&big, 120)))
    });
    group.bench_function("jacobi_n200", |b| {
        b.iter(|| std::hint::black_box(SymMatrix::from_graph(&small, false).eigenvalues()))
    });
    group.bench_function("lanczos_n200_full", |b| {
        b.iter(|| std::hint::black_box(lanczos(&small, 199)))
    });
    group.finish();
}

criterion_group!(benches, bench_spectral);
criterion_main!(benches);
