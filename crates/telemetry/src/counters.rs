//! Lock-free tallies shared between workers and renderers.

use std::sync::atomic::{AtomicU64, Ordering};

/// A set of atomic run counters. One instance serves as a global tally
/// (the progress renderer's source of truth) or as one worker's slot in
/// a per-worker array (the summary's utilization breakdown); either way
/// writers only ever add, so `Relaxed` ordering is sufficient — readers
/// render a slightly stale but internally plausible snapshot.
#[derive(Debug, Default)]
pub struct Counters {
    /// Work units completed.
    pub blocks: AtomicU64,
    /// Trials completed.
    pub trials: AtomicU64,
    /// Walk steps simulated.
    pub steps: AtomicU64,
    /// Nanoseconds spent generating graphs.
    pub gen_ns: AtomicU64,
    /// Nanoseconds spent walking.
    pub walk_ns: AtomicU64,
    /// Generator attempts consumed (restarts + 1 per generated graph).
    pub gen_attempts: AtomicU64,
}

/// A point-in-time copy of a [`Counters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountersSnapshot {
    /// Work units completed.
    pub blocks: u64,
    /// Trials completed.
    pub trials: u64,
    /// Walk steps simulated.
    pub steps: u64,
    /// Nanoseconds spent generating graphs.
    pub gen_ns: u64,
    /// Nanoseconds spent walking.
    pub walk_ns: u64,
    /// Generator attempts consumed.
    pub gen_attempts: u64,
}

impl Counters {
    /// A zeroed counter set.
    pub fn new() -> Counters {
        Counters::default()
    }

    /// Folds one completed block into the tally.
    pub fn record_block(&self, trials: u64, steps: u64, gen_ns: u64, walk_ns: u64, attempts: u64) {
        self.blocks.fetch_add(1, Ordering::Relaxed);
        self.trials.fetch_add(trials, Ordering::Relaxed);
        self.steps.fetch_add(steps, Ordering::Relaxed);
        self.gen_ns.fetch_add(gen_ns, Ordering::Relaxed);
        self.walk_ns.fetch_add(walk_ns, Ordering::Relaxed);
        self.gen_attempts.fetch_add(attempts, Ordering::Relaxed);
    }

    /// Reads every counter (individually atomic; the set is only
    /// approximately consistent while workers are live, exact once the
    /// pool has joined).
    pub fn snapshot(&self) -> CountersSnapshot {
        CountersSnapshot {
            blocks: self.blocks.load(Ordering::Relaxed),
            trials: self.trials.load(Ordering::Relaxed),
            steps: self.steps.load(Ordering::Relaxed),
            gen_ns: self.gen_ns.load(Ordering::Relaxed),
            walk_ns: self.walk_ns.load(Ordering::Relaxed),
            gen_attempts: self.gen_attempts.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let c = Counters::new();
        c.record_block(4, 100, 10, 90, 2);
        c.record_block(2, 50, 5, 45, 1);
        let s = c.snapshot();
        assert_eq!(s.blocks, 2);
        assert_eq!(s.trials, 6);
        assert_eq!(s.steps, 150);
        assert_eq!(s.gen_ns, 15);
        assert_eq!(s.walk_ns, 135);
        assert_eq!(s.gen_attempts, 3);
    }
}
