//! Wiring tests for the `eproc` facade: every subsystem reachable through
//! the re-exports, composed end-to-end.

use eproc::core::cover::run_to_vertex_cover;
use eproc::core::mt19937::Mt19937;
use eproc::core::rule::UniformRule;
use eproc::core::{EProcess, WalkProcess};
use eproc::graphs::generators;
use eproc::graphs::properties::girth;
use eproc::spectral::lanczos::lanczos;
use eproc::stats::{fit_c_nlogn, SeedSequence, Summary, TextTable};
use eproc::theory;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The paper's own toolchain, end to end: Steger–Wormald graph, Mersenne
/// Twister randomness, E-process cover.
#[test]
fn paper_faithful_pipeline() {
    let mut mt = Mt19937::new(20120716); // PODC 2012 vintage seed
    let g = generators::steger_wormald(500, 4, &mut mt).unwrap();
    assert!(eproc::graphs::properties::degrees::is_regular(&g, 4));
    if !eproc::graphs::properties::connectivity::is_connected(&g) {
        return; // astronomically unlikely; regenerate manually if ever hit
    }
    let mut walk = EProcess::new(&g, 0, UniformRule::new());
    let cover = run_to_vertex_cover(&mut walk, &g, &mut mt).expect("connected");
    assert!(cover.steps >= (g.n() - 1) as u64);
    assert!(cover.steps < 50 * g.n() as u64);
}

/// LPS graph + Lanczos + theory, composed through the facade.
#[test]
fn lps_spectral_pipeline() {
    let g = generators::lps_ramanujan(5, 13).unwrap();
    let spec = lanczos(&g, 100);
    assert!(spec.lambda_2() <= theory::ramanujan_lambda_bound(5) + 1e-6);
    assert!(girth::girth_at_most(&g, 5).is_none(), "girth must exceed 5");
    let mut rng = SmallRng::seed_from_u64(1);
    let mut walk = EProcess::new(&g, 0, UniformRule::new());
    let cover = run_to_vertex_cover(&mut walk, &g, &mut rng).unwrap();
    assert!(
        cover.steps < 10 * g.n() as u64,
        "linear-time exploration of the title graph"
    );
}

/// Stats crate consumes measurements produced by the core crate.
#[test]
fn measurement_to_fit_pipeline() {
    let seeds = SeedSequence::new(7);
    let mut ns = Vec::new();
    let mut ys = Vec::new();
    for (i, n) in [200usize, 400, 800].into_iter().enumerate() {
        let mut graph_rng = SmallRng::seed_from_u64(seeds.derive(&[i as u64]));
        let g = generators::connected_random_regular(n, 3, &mut graph_rng).unwrap();
        let mut covers = Vec::new();
        for rep in 0..3 {
            let mut rng = SmallRng::seed_from_u64(seeds.derive(&[i as u64, rep]));
            let mut w = EProcess::new(&g, 0, UniformRule::new());
            covers.push(run_to_vertex_cover(&mut w, &g, &mut rng).unwrap().steps);
        }
        ns.push(n);
        ys.push(Summary::from_u64(&covers).mean);
    }
    let fit = fit_c_nlogn(&ns, &ys);
    // Odd degree: the n ln n model fits with a constant near Figure 1's
    // 0.93 (generous small-n band).
    assert!(fit.slope > 0.3 && fit.slope < 2.5, "c = {}", fit.slope);

    let mut table = TextTable::new(vec!["n", "CV"]);
    for (n, y) in ns.iter().zip(&ys) {
        table.push_row(vec![n.to_string(), format!("{y:.0}")]);
    }
    assert_eq!(table.len(), 3);
    assert!(table.to_string().contains("CV"));
}

/// The WalkProcess trait is object-safe: processes can be driven through
/// `dyn` (the comparison binary relies on uniform treatment).
#[test]
fn walk_process_is_object_safe() {
    let g = generators::torus2d(4, 4);
    let mut rng = SmallRng::seed_from_u64(2);
    let mut walks: Vec<Box<dyn WalkProcess>> = vec![
        Box::new(EProcess::new(&g, 0, UniformRule::new())),
        Box::new(eproc::core::srw::SimpleRandomWalk::new(&g, 0)),
        Box::new(eproc::core::rotor::RotorRouter::new(&g, 0)),
    ];
    for w in &mut walks {
        for _ in 0..50 {
            let s = w.advance(&mut rng);
            assert!(s.to < g.n());
        }
        assert_eq!(w.steps(), 50);
    }
}

/// Facade re-exports resolve and agree with the underlying crates.
#[test]
fn facade_reexports() {
    let b1 = eproc::theory::radzik_lower_bound(100);
    let b2 = eproc_theory::radzik_lower_bound(100);
    assert_eq!(b1, b2);
    let g = eproc::graphs::generators::cycle(5);
    assert_eq!(g.n(), 5);
}
