//! The JSONL event-log writer.

use crate::event::Event;
use crate::sink::TelemetrySink;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// A [`TelemetrySink`] appending every event as one strict-JSON line to
/// a file. Writes are buffered; call [`JsonlSink::finish`] after the run
/// to flush and surface any I/O error that occurred mid-run ([`emit`]
/// itself never panics and never disturbs the run).
///
/// [`emit`]: TelemetrySink::emit
pub struct JsonlSink {
    path: PathBuf,
    state: Mutex<WriterState>,
}

struct WriterState {
    writer: BufWriter<File>,
    /// First write/flush error, kept until `finish` reports it.
    error: Option<io::Error>,
}

impl JsonlSink {
    /// Creates (truncates) the log file at `path`, creating parent
    /// directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from directory or file creation.
    pub fn create(path: &Path) -> io::Result<JsonlSink> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let writer = BufWriter::new(File::create(path)?);
        Ok(JsonlSink {
            path: path.to_path_buf(),
            state: Mutex::new(WriterState {
                writer,
                error: None,
            }),
        })
    }

    /// The path the log is written to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Flushes the buffer and returns the first error encountered over
    /// the sink's lifetime, if any.
    ///
    /// # Errors
    ///
    /// The sticky mid-run write error, or the flush error.
    pub fn finish(&self) -> io::Result<()> {
        let mut state = self.state.lock().expect("jsonl mutex poisoned");
        if let Some(e) = state.error.take() {
            return Err(e);
        }
        state.writer.flush()
    }
}

impl TelemetrySink for JsonlSink {
    fn emit(&self, event: &Event) {
        let mut state = self.state.lock().expect("jsonl mutex poisoned");
        if state.error.is_some() {
            return; // already failed; keep the first error, drop the rest
        }
        let line = event.to_jsonl();
        if let Err(e) = writeln!(state.writer, "{line}") {
            state.error = Some(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn writes_one_line_per_event_and_flushes_on_finish() {
        let dir = std::env::temp_dir().join("eproc_telemetry_jsonl_test");
        let path = dir.join("events.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        for t in 0..3u64 {
            sink.emit(&Event {
                t_ns: t,
                kind: EventKind::AggregationMerged {
                    blocks: 1,
                    cells: 2,
                    agg_ns: 3,
                },
            });
        }
        sink.finish().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("{\"event\": \"aggregation_merged\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
