//! Fixed-width histograms for phase-length and cover-time distributions.

/// A histogram over `[lo, hi)` with equal-width bins; out-of-range samples
/// are clamped into the first/last bin and counted separately.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi` or either bound is not finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(bins > 0, "need at least one bin");
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid range [{lo}, {hi})"
        );
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Adds a sample.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN.
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "cannot bin NaN");
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        if x >= self.hi {
            self.overflow += 1;
            return;
        }
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        let idx = (((x - self.lo) / width) as usize).min(self.bins.len() - 1);
        self.bins[idx] += 1;
    }

    /// Bin counts (within range).
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Samples below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples pushed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The `[lo, hi)` interval of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        assert!(i < self.bins.len());
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + i as f64 * width, self.lo + (i + 1) as f64 * width)
    }

    /// A compact one-line ASCII sparkline of the bin counts.
    pub fn sparkline(&self) -> String {
        const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let max = self.bins.iter().copied().max().unwrap_or(0);
        if max == 0 {
            return " ".repeat(self.bins.len());
        }
        self.bins
            .iter()
            .map(|&b| {
                let level = (b * (LEVELS.len() as u64 - 1) + max / 2) / max;
                LEVELS[level as usize]
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_fill_correctly() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        // Bin width 2: [0,2) gets 0.5 and 1.5; [2,4) gets 2.5 and 2.6;
        // [8,10) gets 9.9.
        for x in [0.5, 1.5, 2.5, 2.6, 9.9] {
            h.push(x);
        }
        assert_eq!(h.bins(), &[2, 2, 0, 0, 1]);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn out_of_range_tracked() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.push(-0.1);
        h.push(1.0);
        h.push(5.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bins(), &[0, 0]);
    }

    #[test]
    fn bin_ranges() {
        let h = Histogram::new(0.0, 10.0, 5);
        assert_eq!(h.bin_range(0), (0.0, 2.0));
        assert_eq!(h.bin_range(4), (8.0, 10.0));
    }

    #[test]
    fn sparkline_shape() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        for _ in 0..8 {
            h.push(0.5);
        }
        h.push(2.5);
        let s = h.sparkline();
        assert_eq!(s.chars().count(), 4);
        assert_eq!(s.chars().next(), Some('█'));
    }

    #[test]
    fn empty_sparkline_blank() {
        let h = Histogram::new(0.0, 1.0, 3);
        assert_eq!(h.sparkline(), "   ");
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn bad_range_panics() {
        let _ = Histogram::new(1.0, 1.0, 3);
    }
}
