//! Descriptive statistics for batches of measurements.

/// Descriptive statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample variance (0 for `n < 2`).
    pub variance: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Median (midpoint of the two central order statistics for even `n`).
    pub median: f64,
}

impl Summary {
    /// Summarises a nonempty sample.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or contains NaN.
    pub fn from_slice(data: &[f64]) -> Summary {
        assert!(!data.is_empty(), "cannot summarise an empty sample");
        assert!(data.iter().all(|x| !x.is_nan()), "sample contains NaN");
        let n = data.len();
        let mean = data.iter().sum::<f64>() / n as f64;
        let variance = if n >= 2 {
            data.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
        };
        Summary {
            n,
            mean,
            variance,
            std_dev: variance.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median,
        }
    }

    /// Summarises integer measurements (cover times are `u64`).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn from_u64(data: &[u64]) -> Summary {
        let floats: Vec<f64> = data.iter().map(|&x| x as f64).collect();
        Summary::from_slice(&floats)
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        self.std_dev / (self.n as f64).sqrt()
    }

    /// Normal-approximation 95% confidence interval for the mean.
    pub fn ci95(&self) -> (f64, f64) {
        let half = 1.96 * self.std_error();
        (self.mean - half, self.mean + half)
    }
}

/// The `q`-quantile (`0 ≤ q ≤ 1`) by linear interpolation of order
/// statistics.
///
/// # Panics
///
/// Panics if `data` is empty, contains NaN, or `q` is outside `[0, 1]`.
pub fn quantile(data: &[f64], q: f64) -> f64 {
    assert!(
        !data.is_empty(),
        "cannot take a quantile of an empty sample"
    );
    assert!((0.0..=1.0).contains(&q), "q must be in [0,1], got {q}");
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_summary() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.n, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.variance - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn even_sample_median() {
        let s = Summary::from_slice(&[4.0, 1.0, 3.0, 2.0]);
        assert!((s.median - 2.5).abs() < 1e-12);
    }

    #[test]
    fn singleton_sample() {
        let s = Summary::from_slice(&[7.0]);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.ci95(), (7.0, 7.0));
    }

    #[test]
    fn from_u64_converts() {
        let s = Summary::from_u64(&[10, 20, 30]);
        assert!((s.mean - 20.0).abs() < 1e-12);
    }

    #[test]
    fn ci_shrinks_with_n() {
        let small = Summary::from_slice(&[1.0, 2.0, 3.0]);
        let data: Vec<f64> = (0..300).map(|i| (i % 3) as f64 + 1.0).collect();
        let large = Summary::from_slice(&data);
        let w = |s: &Summary| s.ci95().1 - s.ci95().0;
        assert!(w(&large) < w(&small));
    }

    #[test]
    fn quantiles() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&data, 0.0), 1.0);
        assert_eq!(quantile(&data, 1.0), 4.0);
        assert!((quantile(&data, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_panics() {
        let _ = Summary::from_slice(&[]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = Summary::from_slice(&[1.0, f64::NAN]);
    }
}
