//! Deterministic fault injection for crash-safety testing.
//!
//! A [`FaultPlan`] schedules failures at exact *(family, group,
//! attempt)* coordinates: attempt 0 is a block's first execution,
//! attempt `k` its `k`-th retry under `--retry-blocks`. Because the
//! coordinates are deterministic (blocks are pure functions of the spec
//! and seed, and retries re-derive the same seeds), an injected fault
//! fires at the same place on every run — which is what lets the
//! recovery proptests assert that *kill → resume* and *panic → retry*
//! both reproduce the uninterrupted artifact byte-for-byte.
//!
//! The plan is armed via `--inject-faults SPEC` or the `EPROC_FAULTS`
//! environment variable and is **off by default**: an empty plan is
//! never consulted on the block hot path (one `is_empty` check, the
//! same discipline as [`eproc_telemetry::NullSink`]), so production
//! runs pay nothing for the harness's existence.

use crate::spec::SpecError;

/// What an injected fault does to its block attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the block (exercises the `catch_unwind` isolation
    /// boundary).
    Panic,
    /// Fail the block's graph generation (exercises the
    /// [`crate::executor::BlockError::Graph`] path without a pathological
    /// spec).
    GraphFail,
}

/// A deterministic schedule of injected faults, keyed by *(family,
/// group, attempt)*. Empty (the default) means disabled.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<((usize, usize, usize), FaultKind)>,
}

impl FaultPlan {
    /// The disabled plan: no faults, zero cost.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// `true` when no faults are scheduled — the hot path checks this
    /// one boolean and skips the harness entirely.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Parses the CLI/env syntax: a comma-separated list of
    /// `kind@family.group.attempt` entries, e.g.
    /// `panic@0.1.0,graphfail@1.0.1` (panic family 0 group 1 on its
    /// first execution; fail family 1 group 0's graph on its first
    /// retry). An empty string parses to the disabled plan.
    ///
    /// # Errors
    ///
    /// [`SpecError`] naming the malformed entry.
    pub fn parse(s: &str) -> Result<FaultPlan, SpecError> {
        let mut faults = Vec::new();
        for entry in s.split(',').filter(|e| !e.trim().is_empty()) {
            let entry = entry.trim();
            let bad = || {
                SpecError::new(format!(
                    "fault {entry:?}: expected <panic|graphfail>@<family>.<group>.<attempt>"
                ))
            };
            let (kind, coords) = entry.split_once('@').ok_or_else(bad)?;
            let kind = match kind {
                "panic" => FaultKind::Panic,
                "graphfail" => FaultKind::GraphFail,
                _ => return Err(bad()),
            };
            let mut parts = coords.splitn(3, '.');
            let mut next = || -> Result<usize, SpecError> {
                parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())
            };
            let key = (next()?, next()?, next()?);
            faults.push((key, kind));
        }
        Ok(FaultPlan { faults })
    }

    /// Builds the plan from the `EPROC_FAULTS` environment variable; an
    /// unset variable yields the disabled plan.
    ///
    /// # Errors
    ///
    /// [`SpecError`] if the variable is set but malformed.
    pub fn from_env() -> Result<FaultPlan, SpecError> {
        match std::env::var("EPROC_FAULTS") {
            Ok(spec) => FaultPlan::parse(&spec),
            Err(_) => Ok(FaultPlan::none()),
        }
    }

    /// The fault scheduled at *(family, group, attempt)*, if any.
    pub fn at(&self, family: usize, group: usize, attempt: usize) -> Option<FaultKind> {
        self.faults
            .iter()
            .find(|(key, _)| *key == (family, group, attempt))
            .map(|&(_, kind)| kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_syntax() {
        let plan = FaultPlan::parse("panic@0.1.0,graphfail@1.0.1").unwrap();
        assert!(!plan.is_empty());
        assert_eq!(plan.at(0, 1, 0), Some(FaultKind::Panic));
        assert_eq!(plan.at(1, 0, 1), Some(FaultKind::GraphFail));
        assert_eq!(plan.at(0, 1, 1), None, "attempt coordinate must match");
        assert_eq!(plan.at(1, 1, 0), None);
    }

    #[test]
    fn empty_and_whitespace_specs_disable_the_plan() {
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse(" , ").unwrap().is_empty());
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn malformed_specs_are_rejected_with_the_entry_named() {
        for bad in ["panic", "panic@1.2", "oops@0.0.0", "panic@a.b.c", "@0.0.0"] {
            let err = FaultPlan::parse(bad).unwrap_err();
            assert!(err.to_string().contains("fault"), "{bad}: {err}");
        }
    }
}
