//! Dense linear algebra: symmetric eigensolver and linear solver.
//!
//! These are the exact oracles against which the scalable sparse methods
//! ([`crate::power`], [`crate::lanczos`]) are cross-validated in tests.

use eproc_graphs::Graph;

/// A dense symmetric matrix stored in full row-major form.
#[derive(Debug, Clone, PartialEq)]
pub struct SymMatrix {
    n: usize,
    data: Vec<f64>,
}

impl SymMatrix {
    /// Creates the zero matrix of size `n × n`.
    pub fn zeros(n: usize) -> SymMatrix {
        SymMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n` or `j >= n`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n);
        self.data[i * self.n + j]
    }

    /// Sets entries `(i, j)` **and** `(j, i)` (symmetry is maintained).
    ///
    /// # Panics
    ///
    /// Panics if `i >= n` or `j >= n`.
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        assert!(i < self.n && j < self.n);
        self.data[i * self.n + j] = value;
        self.data[j * self.n + i] = value;
    }

    /// The symmetrised random-walk operator `S = D^{-1/2} A D^{-1/2}` of a
    /// graph (optionally lazy: `(I + S)/2`). `S` has the same eigenvalues
    /// as the transition matrix `P`.
    pub fn from_graph(g: &Graph, lazy: bool) -> SymMatrix {
        let n = g.n();
        let mut m = SymMatrix::zeros(n);
        for (_, u, v) in g.edges() {
            let w = 1.0 / ((g.degree(u) * g.degree(v)) as f64).sqrt();
            let cur = m.get(u, v);
            m.set(u, v, cur + w); // accumulate parallel edges
        }
        for v in 0..n {
            if g.degree(v) == 0 {
                m.set(v, v, 1.0); // isolated vertex: walk stays put
            }
        }
        if lazy {
            for i in 0..n {
                for j in 0..n {
                    let val = 0.5 * m.get(i, j) + if i == j { 0.5 } else { 0.0 };
                    m.data[i * n + j] = val;
                }
            }
        }
        m
    }

    /// All eigenvalues, sorted in descending order, via the cyclic Jacobi
    /// method (`O(n³)` per sweep; converges quadratically).
    ///
    /// Intended for `n` up to a few hundred — exact enough (`~1e-12`) to
    /// serve as a test oracle.
    pub fn eigenvalues(&self) -> Vec<f64> {
        let n = self.n;
        let mut a = self.data.clone();
        let idx = |i: usize, j: usize| i * n + j;
        let off_diag_norm = |a: &[f64]| -> f64 {
            let mut s = 0.0;
            for i in 0..n {
                for j in 0..n {
                    if i != j {
                        s += a[idx(i, j)] * a[idx(i, j)];
                    }
                }
            }
            s.sqrt()
        };
        let tol = 1e-13 * (1.0 + self.data.iter().map(|x| x.abs()).fold(0.0, f64::max));
        for _sweep in 0..100 {
            if off_diag_norm(&a) < tol {
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = a[idx(p, q)];
                    if apq.abs() < 1e-300 {
                        continue;
                    }
                    let app = a[idx(p, p)];
                    let aqq = a[idx(q, q)];
                    let theta = (aqq - app) / (2.0 * apq);
                    let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                    let c = 1.0 / (t * t + 1.0).sqrt();
                    let s = t * c;
                    // Rotate rows/columns p and q.
                    for k in 0..n {
                        let akp = a[idx(k, p)];
                        let akq = a[idx(k, q)];
                        a[idx(k, p)] = c * akp - s * akq;
                        a[idx(k, q)] = s * akp + c * akq;
                    }
                    for k in 0..n {
                        let apk = a[idx(p, k)];
                        let aqk = a[idx(q, k)];
                        a[idx(p, k)] = c * apk - s * aqk;
                        a[idx(q, k)] = s * apk + c * aqk;
                    }
                }
            }
        }
        let mut eigs: Vec<f64> = (0..n).map(|i| a[idx(i, i)]).collect();
        eigs.sort_by(|x, y| y.partial_cmp(x).expect("eigenvalues are finite"));
        eigs
    }

    /// `λ_max = max(λ_2, |λ_n|)` of the matrix, treating it as a walk
    /// operator (drops the top eigenvalue). Returns 0 for `n <= 1`.
    pub fn lambda_max_walk(&self) -> f64 {
        if self.n <= 1 {
            return 0.0;
        }
        let eigs = self.eigenvalues();
        let lambda2 = eigs[1];
        let lambda_n = eigs[self.n - 1];
        lambda2.max(lambda_n.abs())
    }
}

/// Solves `A x = b` by Gaussian elimination with partial pivoting;
/// returns `None` if `A` is (numerically) singular.
///
/// `a` is row-major `n × n`, consumed along with `b`.
///
/// # Panics
///
/// Panics if `a.len() != b.len()²`.
pub fn solve_linear_system(mut a: Vec<f64>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    assert_eq!(a.len(), n * n, "matrix/vector dimension mismatch");
    for col in 0..n {
        // Pivot.
        let pivot_row = (col..n).max_by(|&i, &j| {
            a[i * n + col]
                .abs()
                .partial_cmp(&a[j * n + col].abs())
                .expect("finite")
        })?;
        if a[pivot_row * n + col].abs() < 1e-12 {
            return None;
        }
        if pivot_row != col {
            for k in 0..n {
                a.swap(col * n + k, pivot_row * n + k);
            }
            b.swap(col, pivot_row);
        }
        let pivot = a[col * n + col];
        for row in (col + 1)..n {
            let factor = a[row * n + col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row * n + k] -= factor * a[col * n + k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row * n + k] * x[k];
        }
        x[row] = acc / a[row * n + row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eproc_graphs::generators;

    #[test]
    fn eigenvalues_of_k2() {
        // S of K2 is [[0,1],[1,0]]: eigenvalues 1, -1.
        let m = SymMatrix::from_graph(&generators::complete(2), false);
        let eigs = m.eigenvalues();
        assert!((eigs[0] - 1.0).abs() < 1e-10);
        assert!((eigs[1] + 1.0).abs() < 1e-10);
    }

    #[test]
    fn eigenvalues_of_complete_graph() {
        // P of K_n has eigenvalues 1 and -1/(n-1) (n-1 times).
        let n = 6;
        let m = SymMatrix::from_graph(&generators::complete(n), false);
        let eigs = m.eigenvalues();
        assert!((eigs[0] - 1.0).abs() < 1e-10);
        for &e in &eigs[1..] {
            assert!((e + 1.0 / (n as f64 - 1.0)).abs() < 1e-10, "eig {e}");
        }
    }

    #[test]
    fn eigenvalues_of_cycle() {
        // P of C_n has eigenvalues cos(2πk/n).
        let n = 8;
        let m = SymMatrix::from_graph(&generators::cycle(n), false);
        let eigs = m.eigenvalues();
        let mut expected: Vec<f64> = (0..n)
            .map(|k| (2.0 * std::f64::consts::PI * k as f64 / n as f64).cos())
            .collect();
        expected.sort_by(|x, y| y.partial_cmp(x).unwrap());
        for (a, b) in eigs.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-9, "got {a}, want {b}");
        }
    }

    #[test]
    fn lazy_shifts_spectrum() {
        let g = generators::cycle(6);
        let eager = SymMatrix::from_graph(&g, false).eigenvalues();
        let lazy = SymMatrix::from_graph(&g, true).eigenvalues();
        for (e, l) in eager.iter().zip(&lazy) {
            assert!((l - (e + 1.0) / 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn lambda_max_bipartite_is_one() {
        let m = SymMatrix::from_graph(&generators::cycle(4), false);
        assert!((m.lambda_max_walk() - 1.0).abs() < 1e-10);
        // Lazy walk fixes it.
        let lazy = SymMatrix::from_graph(&generators::cycle(4), true);
        assert!(lazy.lambda_max_walk() < 1.0 - 1e-6);
    }

    #[test]
    fn hypercube_lambda2() {
        // P of H_r has eigenvalues 1 - 2k/r; λ2 = 1 - 2/r.
        let r = 4;
        let m = SymMatrix::from_graph(&generators::hypercube(r), false);
        let eigs = m.eigenvalues();
        assert!((eigs[1] - (1.0 - 2.0 / r as f64)).abs() < 1e-9);
    }

    #[test]
    fn parallel_edges_accumulate() {
        let g = eproc_graphs::Graph::from_edges(2, &[(0, 1), (0, 1)]).unwrap();
        let m = SymMatrix::from_graph(&g, false);
        // Each vertex has degree 2; two parallel edges weight 2 * 1/2 = 1.
        assert!((m.get(0, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_identity() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let x = solve_linear_system(a, vec![3.0, 4.0]).unwrap();
        assert_eq!(x, vec![3.0, 4.0]);
    }

    #[test]
    fn solve_2x2() {
        // [2 1; 1 3] x = [5; 10] -> x = [1; 3].
        let x = solve_linear_system(vec![2.0, 1.0, 1.0, 3.0], vec![5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the diagonal forces a row swap.
        let x = solve_linear_system(vec![0.0, 1.0, 1.0, 0.0], vec![7.0, 9.0]).unwrap();
        assert!((x[0] - 9.0).abs() < 1e-10);
        assert!((x[1] - 7.0).abs() < 1e-10);
    }

    #[test]
    fn singular_system_is_none() {
        assert!(solve_linear_system(vec![1.0, 2.0, 2.0, 4.0], vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn set_maintains_symmetry() {
        let mut m = SymMatrix::zeros(3);
        m.set(0, 2, 5.0);
        assert_eq!(m.get(2, 0), 5.0);
    }
}
