//! Rule `A`: how the E-process chooses among unvisited edges.
//!
//! §1 of the paper: *"In the simplest case, `A` chooses u.a.r. among
//! unvisited edges incident with the current vertex … However we do not
//! exclude arbitrary choices of rule `A`. For example, the rule could be
//! deterministic, or decided on-line by an adversary, or could vary from
//! vertex to vertex."* Theorem 1 is independent of the rule; the
//! `table_rules` experiment exercises every implementation here to verify
//! that.

use eproc_graphs::{ArcId, Graph, Vertex};
use rand::{Rng, RngCore};

/// What a rule sees when invoked: the current vertex, the unvisited arcs
/// at it, the graph, and the global step count.
#[derive(Debug)]
pub struct RuleContext<'a> {
    /// The graph being explored.
    pub graph: &'a Graph,
    /// The currently occupied vertex.
    pub vertex: Vertex,
    /// The unvisited (blue) arcs at `vertex`; always nonempty when the rule
    /// is consulted. Order is an implementation detail (the engine compacts
    /// in place) — rules needing stability should sort by arc id.
    pub live_arcs: &'a [ArcId],
    /// Steps taken by the process so far.
    pub step: u64,
}

/// A rule for choosing among unvisited edges (rule `A` of the paper).
///
/// Implementations return an **index** into `ctx.live_arcs`. The engine
/// panics if the index is out of range — a rule bug, not a recoverable
/// condition.
pub trait EdgeRule {
    /// Chooses the index of the arc to traverse.
    fn choose(&mut self, ctx: &RuleContext<'_>, rng: &mut dyn RngCore) -> usize;

    /// Monomorphized variant of [`choose`](EdgeRule::choose): identical
    /// decision and identical RNG draw sequence, but statically dispatched
    /// on the RNG type so randomized rules inline into the
    /// [`advance_rng`](crate::process::WalkProcess::advance_rng) kernel.
    ///
    /// The default forwards to the dyn method (correct for any rule);
    /// the randomized in-crate rules override it.
    fn choose_rng<R: RngCore>(&mut self, ctx: &RuleContext<'_>, rng: &mut R) -> usize
    where
        Self: Sized,
    {
        self.choose(ctx, rng)
    }

    /// Resets per-run rule state (decision counters, rotor positions, …)
    /// so a process [`reset`](crate::EProcess::reset) behaves like a
    /// freshly constructed one. Default: no-op, for stateless rules.
    fn reset(&mut self) {}

    /// Human-readable name used in experiment tables.
    fn name(&self) -> &'static str {
        "custom"
    }
}

/// Chooses uniformly at random — the paper's "simplest case", and exactly
/// the greedy random walk of Orenshtein–Shinkar when plugged into the
/// E-process.
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformRule;

impl UniformRule {
    /// Creates the uniform rule.
    pub fn new() -> UniformRule {
        UniformRule
    }
}

impl EdgeRule for UniformRule {
    fn choose(&mut self, ctx: &RuleContext<'_>, mut rng: &mut dyn RngCore) -> usize {
        self.choose_rng(ctx, &mut rng)
    }

    #[inline]
    fn choose_rng<R: RngCore>(&mut self, ctx: &RuleContext<'_>, rng: &mut R) -> usize {
        rng.gen_range(0..ctx.live_arcs.len())
    }

    fn name(&self) -> &'static str {
        "uniform"
    }
}

/// Deterministically chooses the unvisited arc with the smallest arc id
/// (i.e. the lowest-numbered port of the current vertex).
#[derive(Debug, Clone, Copy, Default)]
pub struct FirstPortRule;

impl EdgeRule for FirstPortRule {
    fn choose(&mut self, ctx: &RuleContext<'_>, _rng: &mut dyn RngCore) -> usize {
        ctx.live_arcs
            .iter()
            .enumerate()
            .min_by_key(|&(_, &a)| a)
            .map(|(i, _)| i)
            .expect("live_arcs is nonempty")
    }

    fn name(&self) -> &'static str {
        "first-port"
    }
}

/// Deterministically chooses the unvisited arc with the largest arc id.
#[derive(Debug, Clone, Copy, Default)]
pub struct LastPortRule;

impl EdgeRule for LastPortRule {
    fn choose(&mut self, ctx: &RuleContext<'_>, _rng: &mut dyn RngCore) -> usize {
        ctx.live_arcs
            .iter()
            .enumerate()
            .max_by_key(|&(_, &a)| a)
            .map(|(i, _)| i)
            .expect("live_arcs is nonempty")
    }

    fn name(&self) -> &'static str {
        "last-port"
    }
}

/// A rotor-flavoured deterministic rule: each vertex cycles through its
/// unvisited edges in increasing port order, remembering where it left
/// off ("could vary from vertex to vertex").
#[derive(Debug, Clone)]
pub struct RoundRobinRule {
    next: Vec<u64>,
}

impl RoundRobinRule {
    /// Creates the rule for a graph with `n` vertices.
    pub fn new(n: usize) -> RoundRobinRule {
        RoundRobinRule { next: vec![0; n] }
    }
}

impl EdgeRule for RoundRobinRule {
    fn reset(&mut self) {
        self.next.iter_mut().for_each(|c| *c = 0);
    }

    fn choose(&mut self, ctx: &RuleContext<'_>, _rng: &mut dyn RngCore) -> usize {
        let counter = &mut self.next[ctx.vertex];
        let k = (*counter as usize) % ctx.live_arcs.len();
        *counter += 1;
        // Stabilise against the engine's in-place compaction by ranking
        // live arcs by arc id.
        let mut order: Vec<usize> = (0..ctx.live_arcs.len()).collect();
        order.sort_by_key(|&i| ctx.live_arcs[i]);
        order[k]
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// An adversarial rule: an arbitrary on-line callback chooses the index.
/// Theorem 1's bound must hold for *any* such adversary on even-degree
/// `ℓ`-good graphs.
pub struct AdversarialRule<F> {
    strategy: F,
    decisions: u64,
}

impl<F> std::fmt::Debug for AdversarialRule<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AdversarialRule {{ decisions: {} }}", self.decisions)
    }
}

impl<F: FnMut(&RuleContext<'_>) -> usize> AdversarialRule<F> {
    /// Wraps an adversary callback.
    pub fn new(strategy: F) -> AdversarialRule<F> {
        AdversarialRule {
            strategy,
            decisions: 0,
        }
    }

    /// Number of blue choices the adversary has made.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }
}

impl<F: FnMut(&RuleContext<'_>) -> usize> EdgeRule for AdversarialRule<F> {
    fn reset(&mut self) {
        self.decisions = 0;
    }

    fn choose(&mut self, ctx: &RuleContext<'_>, _rng: &mut dyn RngCore) -> usize {
        self.decisions += 1;
        (self.strategy)(ctx)
    }

    fn name(&self) -> &'static str {
        "adversarial"
    }
}

/// An adversary that always steers toward the neighbour of **highest
/// remaining blue degree** — a natural attempt to keep the walk inside
/// already-explored territory and delay discovery. Used by `table_rules`
/// as a concrete malicious strategy.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyAdversary;

impl EdgeRule for GreedyAdversary {
    fn choose(&mut self, ctx: &RuleContext<'_>, _rng: &mut dyn RngCore) -> usize {
        // The blue degree of the target is not directly visible, so use the
        // next best thing the adversary can compute on-line: prefer the
        // target with the largest port count minus distance-1 heuristic,
        // i.e. highest degree (static proxy), tie-broken by arc id.
        ctx.live_arcs
            .iter()
            .enumerate()
            .max_by_key(|&(_, &a)| {
                (
                    ctx.graph.degree(ctx.graph.arc_target(a)),
                    std::cmp::Reverse(a),
                )
            })
            .map(|(i, _)| i)
            .expect("live_arcs is nonempty")
    }

    fn name(&self) -> &'static str {
        "greedy-adversary"
    }
}

/// A randomized rule with per-edge weights: among the unvisited arcs it
/// picks edge `e` with probability proportional to `weights[e]` ("could
/// vary from vertex to vertex" — here, from edge to edge).
#[derive(Debug, Clone)]
pub struct WeightedPortRule {
    weights: Vec<f64>,
}

impl WeightedPortRule {
    /// Creates the rule from per-edge weights (`weights.len() == m`, all
    /// positive and finite).
    ///
    /// # Panics
    ///
    /// Panics if any weight is not finite and positive.
    pub fn new(weights: Vec<f64>) -> WeightedPortRule {
        assert!(
            weights.iter().all(|&w| w.is_finite() && w > 0.0),
            "edge weights must be positive and finite"
        );
        WeightedPortRule { weights }
    }
}

impl EdgeRule for WeightedPortRule {
    fn choose(&mut self, ctx: &RuleContext<'_>, mut rng: &mut dyn RngCore) -> usize {
        self.choose_rng(ctx, &mut rng)
    }

    fn choose_rng<R: RngCore>(&mut self, ctx: &RuleContext<'_>, rng: &mut R) -> usize {
        let total: f64 = ctx
            .live_arcs
            .iter()
            .map(|&a| self.weights[ctx.graph.arc_edge(a)])
            .sum();
        let mut target = rng.gen_range(0.0..total);
        for (i, &a) in ctx.live_arcs.iter().enumerate() {
            target -= self.weights[ctx.graph.arc_edge(a)];
            if target <= 0.0 {
                return i;
            }
        }
        ctx.live_arcs.len() - 1 // numerical slack: last index
    }

    fn name(&self) -> &'static str {
        "weighted"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eproc_graphs::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn ctx_on<'a>(g: &'a Graph, v: Vertex, live: &'a [ArcId]) -> RuleContext<'a> {
        RuleContext {
            graph: g,
            vertex: v,
            live_arcs: live,
            step: 0,
        }
    }

    #[test]
    fn uniform_rule_in_range_and_varies() {
        let g = generators::complete(6);
        let live: Vec<ArcId> = g.arc_range(0).collect();
        let mut rule = UniformRule::new();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let i = rule.choose(&ctx_on(&g, 0, &live), &mut rng);
            assert!(i < live.len());
            seen.insert(i);
        }
        assert_eq!(
            seen.len(),
            live.len(),
            "uniform rule should hit every index"
        );
    }

    #[test]
    fn first_and_last_port_rules() {
        let g = generators::complete(4);
        let live = [7usize, 2, 5];
        let mut rng = SmallRng::seed_from_u64(2);
        assert_eq!(FirstPortRule.choose(&ctx_on(&g, 0, &live), &mut rng), 1);
        assert_eq!(LastPortRule.choose(&ctx_on(&g, 0, &live), &mut rng), 0);
    }

    #[test]
    fn round_robin_cycles_in_port_order() {
        let g = generators::complete(4);
        let live = [9usize, 3, 6];
        let mut rule = RoundRobinRule::new(g.n());
        let mut rng = SmallRng::seed_from_u64(3);
        // Port order is 3 < 6 < 9 → indices 1, 2, 0, then wraps.
        assert_eq!(rule.choose(&ctx_on(&g, 0, &live), &mut rng), 1);
        assert_eq!(rule.choose(&ctx_on(&g, 0, &live), &mut rng), 2);
        assert_eq!(rule.choose(&ctx_on(&g, 0, &live), &mut rng), 0);
        assert_eq!(rule.choose(&ctx_on(&g, 0, &live), &mut rng), 1);
        // Independent counter per vertex.
        assert_eq!(rule.choose(&ctx_on(&g, 2, &live), &mut rng), 1);
    }

    #[test]
    fn adversarial_counts_decisions() {
        let g = generators::complete(4);
        let live = [0usize, 1];
        let mut rule = AdversarialRule::new(|_ctx: &RuleContext<'_>| 0);
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..5 {
            assert_eq!(rule.choose(&ctx_on(&g, 0, &live), &mut rng), 0);
        }
        assert_eq!(rule.decisions(), 5);
        assert!(format!("{rule:?}").contains("decisions: 5"));
    }

    #[test]
    fn greedy_adversary_prefers_high_degree_target() {
        // Star + pendant: center has degree 4; from a leaf the adversary
        // must pick the arc toward the center.
        let g = eproc_graphs::Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (3, 4)]).unwrap();
        let live: Vec<ArcId> = g.arc_range(3).collect(); // vertex 3: edges to 0 and 4
        let mut rng = SmallRng::seed_from_u64(5);
        let i = GreedyAdversary.choose(&ctx_on(&g, 3, &live), &mut rng);
        assert_eq!(g.arc_target(live[i]), 0);
    }

    #[test]
    fn rule_names() {
        assert_eq!(UniformRule::new().name(), "uniform");
        assert_eq!(FirstPortRule.name(), "first-port");
        assert_eq!(LastPortRule.name(), "last-port");
        assert_eq!(RoundRobinRule::new(1).name(), "round-robin");
        assert_eq!(GreedyAdversary.name(), "greedy-adversary");
        assert_eq!(
            AdversarialRule::new(|_: &RuleContext<'_>| 0).name(),
            "adversarial"
        );
        assert_eq!(WeightedPortRule::new(vec![1.0]).name(), "weighted");
    }

    #[test]
    fn weighted_rule_biases_choice() {
        // Star center with one heavy edge: the heavy edge is picked with
        // probability 9/12 among three live edges of weight 9, 2, 1.
        let g = generators::star(4);
        let live: Vec<ArcId> = g.arc_range(0).collect();
        let mut rule = WeightedPortRule::new(vec![9.0, 2.0, 1.0]);
        let mut rng = SmallRng::seed_from_u64(6);
        let trials = 20_000;
        let mut heavy = 0u64;
        for _ in 0..trials {
            let i = rule.choose(&ctx_on(&g, 0, &live), &mut rng);
            assert!(i < live.len());
            if g.arc_edge(live[i]) == 0 {
                heavy += 1;
            }
        }
        let f = heavy as f64 / trials as f64;
        assert!((f - 0.75).abs() < 0.02, "heavy edge frequency {f}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn weighted_rule_rejects_bad_weights() {
        let _ = WeightedPortRule::new(vec![1.0, -2.0]);
    }
}
