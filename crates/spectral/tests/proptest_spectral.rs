//! Property tests for the spectral toolkit: random small graphs, exact
//! identities, and cross-method agreement.

use eproc_graphs::properties::{bipartite, connectivity};
use eproc_graphs::Graph;
use eproc_spectral::conductance::{cheeger_slack, conductance_exact};
use eproc_spectral::dense::SymMatrix;
use eproc_spectral::hitting::{commute_time, expected_return_time, hitting_times_to};
use eproc_spectral::lanczos::lanczos;
use eproc_spectral::power::{spectral_gap, PowerOptions};
use eproc_spectral::resistance::{effective_resistance, foster_sum};
use eproc_spectral::transition::{apply_transition, stationary_distribution};
use proptest::prelude::*;

/// Strategy: a *connected* random simple graph on `3..=12` vertices (built
/// by adding a random spanning-tree skeleton first).
fn arb_connected_graph() -> impl Strategy<Value = Graph> {
    (
        3usize..12,
        proptest::collection::vec(0usize..1000, 11),
        proptest::collection::vec((0usize..12, 0usize..12), 0..24),
    )
        .prop_map(|(n, parents, extra)| {
            let mut edges = Vec::new();
            let mut seen = std::collections::HashSet::new();
            for v in 1..n {
                let p = parents[v - 1] % v;
                seen.insert((p, v));
                edges.push((p, v));
            }
            for (a, b) in extra {
                let (u, v) = (a % n, b % n);
                if u != v {
                    let key = (u.min(v), u.max(v));
                    if seen.insert(key) {
                        edges.push(key);
                    }
                }
            }
            Graph::from_edges(n, &edges).expect("valid by construction")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn walk_spectrum_in_unit_interval(g in arb_connected_graph()) {
        let eigs = SymMatrix::from_graph(&g, false).eigenvalues();
        prop_assert!((eigs[0] - 1.0).abs() < 1e-8, "top eigenvalue must be 1");
        for &e in &eigs {
            prop_assert!((-1.0 - 1e-8..=1.0 + 1e-8).contains(&e), "eig {e} outside [-1,1]");
        }
        // Trace of S is 0 (no self-loops).
        let sum: f64 = eigs.iter().sum();
        prop_assert!(sum.abs() < 1e-7, "trace {sum} should vanish");
    }

    #[test]
    fn lambda_n_is_minus_one_iff_bipartite(g in arb_connected_graph()) {
        let eigs = SymMatrix::from_graph(&g, false).eigenvalues();
        let lambda_n = eigs[g.n() - 1];
        if bipartite::is_bipartite(&g) {
            prop_assert!((lambda_n + 1.0).abs() < 1e-8);
        } else {
            prop_assert!(lambda_n > -1.0 + 1e-8);
        }
    }

    #[test]
    fn power_iteration_matches_jacobi(g in arb_connected_graph()) {
        let exact = SymMatrix::from_graph(&g, false).eigenvalues();
        let est = spectral_gap(&g, PowerOptions::default());
        prop_assert!((est.lambda_2 - exact[1]).abs() < 1e-5,
            "lambda2 {} vs {}", est.lambda_2, exact[1]);
        prop_assert!((est.lambda_n - exact[g.n() - 1]).abs() < 1e-5,
            "lambdan {} vs {}", est.lambda_n, exact[g.n() - 1]);
    }

    #[test]
    fn lanczos_matches_jacobi(g in arb_connected_graph()) {
        let exact = SymMatrix::from_graph(&g, false).eigenvalues();
        let res = lanczos(&g, g.n() - 1);
        prop_assert!((res.lambda_2() - exact[1]).abs() < 1e-6);
        prop_assert!((res.lambda_n() - exact[g.n() - 1]).abs() < 1e-6);
    }

    #[test]
    fn stationary_is_invariant(g in arb_connected_graph()) {
        let pi = stationary_distribution(&g);
        let next = apply_transition(&g, &pi, false);
        for (a, b) in pi.iter().zip(&next) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn return_time_identity(g in arb_connected_graph()) {
        let pi = stationary_distribution(&g);
        for v in [0, g.n() / 2] {
            let rt = expected_return_time(&g, v).unwrap();
            prop_assert!((rt - 1.0 / pi[v]).abs() < 1e-6,
                "E_v T_v+ = {rt} vs 1/pi = {}", 1.0 / pi[v]);
        }
    }

    #[test]
    fn hitting_recurrence_holds(g in arb_connected_graph()) {
        let target = g.n() - 1;
        let h = hitting_times_to(&g, target).unwrap();
        prop_assert_eq!(h[target], 0.0);
        for u in g.vertices().filter(|&u| u != target) {
            let mean: f64 = g.neighbors(u).map(|w| h[w]).sum::<f64>() / g.degree(u) as f64;
            prop_assert!((h[u] - 1.0 - mean).abs() < 1e-7, "recurrence at {u}");
        }
    }

    #[test]
    fn commute_equals_2m_resistance(g in arb_connected_graph()) {
        let (u, v) = (0, g.n() - 1);
        let k = commute_time(&g, u, v).unwrap();
        let r = effective_resistance(&g, u, v).unwrap();
        prop_assert!((k - 2.0 * g.m() as f64 * r).abs() < 1e-5,
            "K = {k}, 2mR = {}", 2.0 * g.m() as f64 * r);
    }

    #[test]
    fn foster_theorem_holds(g in arb_connected_graph()) {
        let sum = foster_sum(&g).unwrap();
        prop_assert!((sum - (g.n() as f64 - 1.0)).abs() < 1e-6,
            "Foster sum {sum} vs n-1 = {}", g.n() - 1);
    }

    #[test]
    fn cheeger_sandwich(g in arb_connected_graph()) {
        prop_assume!(connectivity::is_connected(&g));
        let phi = conductance_exact(&g).unwrap();
        let lambda_2 = SymMatrix::from_graph(&g, false).eigenvalues()[1];
        let (lo, hi) = cheeger_slack(phi, lambda_2);
        prop_assert!(lo >= -1e-8, "lower Cheeger violated: lambda2={lambda_2}, phi={phi}");
        prop_assert!(hi >= -1e-8, "upper Cheeger violated: lambda2={lambda_2}, phi={phi}");
    }

    #[test]
    fn lazy_gap_halves(g in arb_connected_graph()) {
        let eager = SymMatrix::from_graph(&g, false).eigenvalues();
        let lazy = SymMatrix::from_graph(&g, true).eigenvalues();
        for (e, l) in eager.iter().zip(&lazy) {
            prop_assert!((l - (e + 1.0) / 2.0).abs() < 1e-8);
        }
    }
}
