//! Error type shared by graph construction and generators.

use std::error::Error;
use std::fmt;

/// Errors arising while constructing or generating graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge endpoint referenced a vertex `>= n`.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: usize,
        /// The number of vertices in the graph under construction.
        n: usize,
    },
    /// A self-loop `(v, v)` was supplied; the crate models loop-free
    /// multigraphs (the paper's processes are defined on loop-free graphs).
    SelfLoop {
        /// The vertex carrying the loop.
        vertex: usize,
    },
    /// A degree sequence was infeasible (odd sum, or a degree `>= n` was
    /// requested for a simple graph).
    InfeasibleDegrees {
        /// Human-readable description of the infeasibility.
        reason: String,
    },
    /// A randomized generator exhausted its retry budget without producing a
    /// graph with the requested properties (e.g. simple, connected).
    RetriesExhausted {
        /// Name of the generator that gave up.
        generator: &'static str,
        /// Number of attempts made.
        attempts: usize,
        /// Human-readable description of what was being generated
        /// (e.g. "a connected 4-regular graph on 24 vertices"), so that a
        /// failure deep inside a 64-point sweep is locatable without
        /// decoding raw indices.
        what: String,
    },
    /// Parameters outside the domain of a deterministic construction
    /// (e.g. LPS requires distinct primes `p, q ≡ 1 (mod 4)`).
    InvalidParameter {
        /// Human-readable description of the violated precondition.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(
                    f,
                    "vertex {vertex} out of range for graph with {n} vertices"
                )
            }
            GraphError::SelfLoop { vertex } => {
                write!(f, "self-loop at vertex {vertex} is not supported")
            }
            GraphError::InfeasibleDegrees { reason } => {
                write!(f, "infeasible degree sequence: {reason}")
            }
            GraphError::RetriesExhausted {
                generator,
                attempts,
                what,
            } => {
                write!(
                    f,
                    "generator {generator} exhausted {attempts} attempts \
                     building {what} (restart budget MAX_RESTARTS = {})",
                    crate::generators::MAX_RESTARTS
                )
            }
            GraphError::InvalidParameter { reason } => {
                write!(f, "invalid parameter: {reason}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GraphError::VertexOutOfRange { vertex: 7, n: 5 };
        assert_eq!(
            e.to_string(),
            "vertex 7 out of range for graph with 5 vertices"
        );
        let e = GraphError::SelfLoop { vertex: 3 };
        assert!(e.to_string().contains("self-loop"));
        let e = GraphError::InfeasibleDegrees {
            reason: "odd sum".into(),
        };
        assert!(e.to_string().contains("odd sum"));
        let e = GraphError::RetriesExhausted {
            generator: "steger_wormald",
            attempts: 10,
            what: "a 3-regular simple graph on 8 vertices".into(),
        };
        assert!(e.to_string().contains("steger_wormald"));
        // The message names the budget the attempts count ran against and
        // the generation target, so sweep failures are locatable.
        assert!(e.to_string().contains("10 attempts"));
        assert!(e
            .to_string()
            .contains("a 3-regular simple graph on 8 vertices"));
        assert!(e.to_string().contains("MAX_RESTARTS = 1000"));
        let e = GraphError::InvalidParameter {
            reason: "p must be prime".into(),
        };
        assert!(e.to_string().contains("p must be prime"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
