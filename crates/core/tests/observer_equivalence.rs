//! The observer pipeline must reproduce the legacy measurement loops
//! step-for-step: `run_cover` / `blanket_time` / `trace_phases` are thin
//! wrappers now, so we pin their outputs against verbatim copies of the
//! pre-refactor loops on identical seeded trajectories.

use eproc_core::cover::{blanket_time, run_cover, CoverRun, CoverTarget};
use eproc_core::rule::UniformRule;
use eproc_core::segments::{trace_phases, Phase, PhaseTrace};
use eproc_core::srw::SimpleRandomWalk;
use eproc_core::{EProcess, StepKind, WalkProcess};
use eproc_graphs::{generators, Graph};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Verbatim copy of the pre-refactor `run_cover` loop.
fn legacy_run_cover<W: WalkProcess + ?Sized>(
    walk: &mut W,
    target: CoverTarget,
    max_steps: u64,
    rng: &mut dyn RngCore,
) -> CoverRun {
    let g = walk.graph();
    let n = g.n();
    let m = g.m();
    let mut vertex_seen = vec![false; n];
    let mut edge_seen = vec![false; m];
    let mut vertices_visited = 1usize;
    vertex_seen[walk.current()] = true;
    let mut edges_visited = 0usize;
    let mut steps_to_vertex_cover = if vertices_visited == n { Some(0) } else { None };
    let mut steps_to_edge_cover = if m == 0 { Some(0) } else { None };
    let mut blue_steps = 0u64;
    let mut red_steps = 0u64;
    let mut t = 0u64;
    let done = |v: Option<u64>, e: Option<u64>| match target {
        CoverTarget::Vertices => v.is_some(),
        CoverTarget::Edges => e.is_some(),
        CoverTarget::Both => v.is_some() && e.is_some(),
    };
    while !done(steps_to_vertex_cover, steps_to_edge_cover) && t < max_steps {
        let step = walk.advance(rng);
        t += 1;
        match step.kind {
            StepKind::Blue => blue_steps += 1,
            StepKind::Red => red_steps += 1,
        }
        if !vertex_seen[step.to] {
            vertex_seen[step.to] = true;
            vertices_visited += 1;
            if vertices_visited == n {
                steps_to_vertex_cover = Some(t);
            }
        }
        if let Some(e) = step.edge {
            if !edge_seen[e] {
                edge_seen[e] = true;
                edges_visited += 1;
                if edges_visited == m {
                    steps_to_edge_cover = Some(t);
                }
            }
        }
    }
    CoverRun {
        steps: t,
        steps_to_vertex_cover,
        steps_to_edge_cover,
        blue_steps,
        red_steps,
        vertices_visited,
        edges_visited,
        final_vertex: walk.current(),
    }
}

/// Verbatim copy of the pre-refactor `blanket_time` loop.
fn legacy_blanket_time<W: WalkProcess + ?Sized>(
    walk: &mut W,
    delta: f64,
    max_steps: u64,
    rng: &mut dyn RngCore,
) -> Option<u64> {
    let (n, pi) = {
        let g = walk.graph();
        let two_m = g.total_degree() as f64;
        let pi: Vec<f64> = g.vertices().map(|v| g.degree(v) as f64 / two_m).collect();
        (g.n(), pi)
    };
    let mut visits = vec![0u64; n];
    visits[walk.current()] = 1;
    let check_every = n.max(1) as u64;
    let mut t = 0u64;
    while t < max_steps {
        let step = walk.advance(rng);
        t += 1;
        visits[step.to] += 1;
        if t.is_multiple_of(check_every) {
            let ok = (0..n).all(|v| visits[v] as f64 >= delta * pi[v] * t as f64);
            if ok {
                return Some(t);
            }
        }
    }
    None
}

/// Verbatim copy of the pre-refactor `trace_phases` loop.
fn legacy_trace_phases(
    walk: &mut EProcess<'_, UniformRule>,
    max_steps: u64,
    rng: &mut dyn RngCore,
) -> PhaseTrace {
    assert_eq!(walk.steps(), 0, "phase tracing requires a fresh walk");
    let mut phases: Vec<Phase> = Vec::new();
    let mut current: Option<Phase> = None;
    let mut t = 0u64;
    while walk.unvisited_edge_count() > 0 && t < max_steps {
        let from = walk.current();
        let step = walk.advance(rng);
        t += 1;
        match current.as_mut() {
            Some(phase) if phase.kind == step.kind => {
                phase.length += 1;
                phase.end_vertex = step.to;
            }
            _ => {
                if let Some(done) = current.take() {
                    phases.push(done);
                }
                current = Some(Phase {
                    kind: step.kind,
                    start_vertex: from,
                    end_vertex: step.to,
                    length: 1,
                });
            }
        }
    }
    if let Some(done) = current.take() {
        phases.push(done);
    }
    PhaseTrace { phases, steps: t }
}

fn assert_cover_equivalence(g: &Graph, seed: u64, target: CoverTarget, cap: u64) {
    for eprocess in [true, false] {
        fn build(g: &Graph, eprocess: bool) -> Box<dyn WalkProcess + '_> {
            if eprocess {
                Box::new(EProcess::new(g, 0, UniformRule::new()))
            } else {
                Box::new(SimpleRandomWalk::new(g, 0))
            }
        }
        let mut rng_a = SmallRng::seed_from_u64(seed);
        let mut walk_a = build(g, eprocess);
        let legacy = legacy_run_cover(&mut *walk_a, target, cap, &mut rng_a);
        let mut rng_b = SmallRng::seed_from_u64(seed);
        let mut walk_b = build(g, eprocess);
        let observed = run_cover(&mut *walk_b, target, cap, &mut rng_b);
        assert_eq!(legacy, observed, "cover mismatch (eprocess={eprocess})");
        // Step-for-step: both walks consumed the same RNG stream.
        assert_eq!(rng_a.next_u64(), rng_b.next_u64());
        assert_eq!(walk_a.steps(), walk_b.steps());
        assert_eq!(walk_a.current(), walk_b.current());
    }
}

fn assert_blanket_equivalence(g: &Graph, seed: u64, delta: f64, cap: u64) {
    let mut rng_a = SmallRng::seed_from_u64(seed);
    let mut walk_a = SimpleRandomWalk::new(g, 0);
    let legacy = legacy_blanket_time(&mut walk_a, delta, cap, &mut rng_a);
    let mut rng_b = SmallRng::seed_from_u64(seed);
    let mut walk_b = SimpleRandomWalk::new(g, 0);
    let observed = blanket_time(&mut walk_b, delta, cap, &mut rng_b).expect("valid delta");
    assert_eq!(legacy, observed, "blanket mismatch");
    assert_eq!(walk_a.steps(), walk_b.steps());
    assert_eq!(rng_a.next_u64(), rng_b.next_u64());
}

fn assert_phase_equivalence(g: &Graph, seed: u64, cap: u64) {
    let mut rng_a = SmallRng::seed_from_u64(seed);
    let mut walk_a = EProcess::new(g, 0, UniformRule::new());
    let legacy = legacy_trace_phases(&mut walk_a, cap, &mut rng_a);
    let mut rng_b = SmallRng::seed_from_u64(seed);
    let mut walk_b = EProcess::new(g, 0, UniformRule::new());
    let observed = trace_phases(&mut walk_b, cap, &mut rng_b);
    assert_eq!(legacy, observed, "phase trace mismatch");
    assert_eq!(walk_a.steps(), walk_b.steps());
}

#[test]
fn seeded_equivalence_on_random_regular_graphs() {
    for (n, d, seed) in [(60, 4, 1u64), (100, 3, 2), (150, 6, 3)] {
        let mut graph_rng = SmallRng::seed_from_u64(seed);
        let g = generators::connected_random_regular(n, d, &mut graph_rng).unwrap();
        for run_seed in [10, 11, 12] {
            assert_cover_equivalence(&g, run_seed, CoverTarget::Vertices, 10_000_000);
            assert_cover_equivalence(&g, run_seed, CoverTarget::Edges, 10_000_000);
            assert_cover_equivalence(&g, run_seed, CoverTarget::Both, 10_000_000);
            assert_blanket_equivalence(&g, run_seed, 0.4, 10_000_000);
            assert_phase_equivalence(&g, run_seed, 10_000_000);
        }
    }
}

#[test]
fn seeded_equivalence_on_hypercubes() {
    for dim in [3usize, 4, 5] {
        let g = generators::hypercube(dim);
        for run_seed in [20, 21] {
            assert_cover_equivalence(&g, run_seed, CoverTarget::Both, 10_000_000);
            assert_blanket_equivalence(&g, run_seed, 0.3, 10_000_000);
            assert_phase_equivalence(&g, run_seed, 10_000_000);
        }
    }
}

#[test]
fn seeded_equivalence_under_truncation() {
    // Caps that cut runs mid-flight must truncate identically.
    let g = generators::torus2d(8, 8);
    for cap in [0u64, 1, 7, 64, 1000] {
        assert_cover_equivalence(&g, 5, CoverTarget::Both, cap);
        assert_blanket_equivalence(&g, 5, 0.4, cap);
        assert_phase_equivalence(&g, 5, cap);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `run_observed` + `CoverObserver`/`BlanketObserver` reproduces the
    /// legacy loops on random regular and hypercube graphs.
    #[test]
    fn observer_pipeline_matches_legacy_loops(
        shape in 0usize..4,
        graph_seed in 0u64..500,
        run_seed in 0u64..500,
    ) {
        let g = match shape {
            0 => {
                let mut rng = SmallRng::seed_from_u64(graph_seed);
                generators::connected_random_regular(40, 4, &mut rng).unwrap()
            }
            1 => {
                let mut rng = SmallRng::seed_from_u64(graph_seed);
                generators::connected_random_regular(50, 3, &mut rng).unwrap()
            }
            2 => generators::hypercube(4),
            _ => generators::hypercube(5),
        };
        assert_cover_equivalence(&g, run_seed, CoverTarget::Vertices, 10_000_000);
        assert_cover_equivalence(&g, run_seed, CoverTarget::Edges, 10_000_000);
        assert_blanket_equivalence(&g, run_seed, 0.35, 10_000_000);
        assert_phase_equivalence(&g, run_seed, 10_000_000);
    }
}
