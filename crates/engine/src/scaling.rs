//! Growth-law analysis of size-sweep reports — the engine half of the
//! `eproc scale` subsystem.
//!
//! A sweep run produces an [`ExperimentReport`] with one cell per
//! (size, process). This module regroups those cells into per-process
//! series — the steps-to-target series plus one series per metric
//! column — and hands each to
//! [`eproc_stats::scaling::fit_growth_models`], which fits the competing
//! growth models (`c·m`, `a+b·m`, `c·n ln n`) and selects one by
//! residual score. The result is pure data; rendering lives in
//! [`crate::report`] (`scaling_table`, `to_json_with_scaling`).
//!
//! Analysis is a pure function of the report, so a thread-count-invariant
//! report yields a byte-identical growth-law artifact for any `--threads`
//! value.

use crate::executor::ExperimentReport;
use eproc_stats::regression::FitError;
use eproc_stats::scaling::{fit_growth_models, GrowthSelection, ScalingPoint};
use std::fmt;

/// The name of the primary series: the target's steps-to-completion.
pub const STEPS_SERIES: &str = "steps";

/// One fitted (process × series) growth law.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesFit {
    /// Size-free graph family key the series sweeps over (see
    /// [`crate::spec::GraphSpec::family_label`]). Growth laws are
    /// per-family: a multi-family sweep yields one series per
    /// (family × process × column), never a mixed curve.
    pub family: String,
    /// Process label the series belongs to.
    pub process: String,
    /// Series name: [`STEPS_SERIES`] or a metric column name.
    pub series: String,
    /// The sweep points the models were fitted to (sizes with at least
    /// one resolved trial), in cell order.
    pub points: Vec<ScalingPoint>,
    /// Candidate fits and the preferred model.
    pub selection: GrowthSelection,
}

/// The full growth-law analysis of one sweep report.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingReport {
    /// One entry per (family × process × series), families then
    /// processes in first-appearance order, the steps series first
    /// within each group.
    pub series: Vec<SeriesFit>,
}

/// Why a report could not be analysed for growth laws.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScalingError {
    /// A series could not be fitted (too few resolved sizes, identical
    /// sizes, non-finite data, …).
    Series {
        /// Family key of the failing series.
        family: String,
        /// Process label of the failing series.
        process: String,
        /// Series name.
        series: String,
        /// Underlying fit error.
        source: FitError,
    },
    /// The report has no cells at all.
    Empty,
}

impl fmt::Display for ScalingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalingError::Series {
                family,
                process,
                series,
                source,
            } => write!(
                f,
                "growth-law fit for {family}/{process}/{series}: {source} \
                 (a sweep needs >= 3 completed sizes per series)"
            ),
            ScalingError::Empty => write!(f, "report has no cells to analyse"),
        }
    }
}

impl std::error::Error for ScalingError {}

/// Fits growth laws to every (family × process × series) of a sweep
/// report. Cells are grouped by the size-free
/// [`family_label`](crate::spec::GraphSpec::family_label) first, so a
/// sweep over several families (`--graph "regular:{…},4;cycle:{…}"`)
/// fits each family's curve separately instead of silently mixing them.
///
/// # Errors
///
/// [`ScalingError`] when the report is empty or any series cannot support
/// the fits — too few sizes with resolved values, all sizes identical, or
/// non-finite aggregates. This is the path by which a degenerate sweep
/// spec surfaces as a CLI error instead of a worker panic.
pub fn analyze(report: &ExperimentReport) -> Result<ScalingReport, ScalingError> {
    if report.cells.is_empty() {
        return Err(ScalingError::Empty);
    }
    let mut groups: Vec<(&str, &str)> = Vec::new();
    for cell in &report.cells {
        let key = (cell.family.as_str(), cell.process.as_str());
        if !groups.contains(&key) {
            groups.push(key);
        }
    }
    let metric_names: Vec<String> = report.cells[0]
        .metrics
        .iter()
        .map(|m| m.name.clone())
        .collect();
    let mut series = Vec::new();
    for (family, process) in groups {
        let cells: Vec<_> = report
            .cells
            .iter()
            .filter(|c| c.family == family && c.process == process)
            .collect();
        let fit_series = |name: &str,
                          points: Vec<ScalingPoint>|
         -> Result<SeriesFit, ScalingError> {
            let selection = fit_growth_models(&points).map_err(|source| ScalingError::Series {
                family: family.to_string(),
                process: process.to_string(),
                series: name.to_string(),
                source,
            })?;
            Ok(SeriesFit {
                family: family.to_string(),
                process: process.to_string(),
                series: name.to_string(),
                points,
                selection,
            })
        };
        let steps_points: Vec<ScalingPoint> = cells
            .iter()
            .filter(|c| c.completed > 0)
            .map(|c| ScalingPoint {
                n: c.n,
                m: c.m,
                y: c.steps.mean(),
            })
            .collect();
        series.push(fit_series(STEPS_SERIES, steps_points)?);
        for (mi, name) in metric_names.iter().enumerate() {
            let points: Vec<ScalingPoint> = cells
                .iter()
                .filter(|c| c.metrics[mi].stats.count() > 0)
                .map(|c| ScalingPoint {
                    n: c.n,
                    m: c.m,
                    y: c.metrics[mi].stats.mean(),
                })
                .collect();
            series.push(fit_series(name, points)?);
        }
    }
    Ok(ScalingReport { series })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{run, RunOptions};
    use crate::spec::{
        CapSpec, ExperimentSpec, GraphSpec, ProcessSpec, ResamplePlan, RuleSpec, Target,
    };
    use eproc_stats::scaling::GrowthModel;

    fn sweep_spec(sizes: &[usize]) -> ExperimentSpec {
        ExperimentSpec {
            name: "scale-test".into(),
            description: "unit-test sweep".into(),
            graphs: sizes
                .iter()
                .map(|&n| GraphSpec::Regular { n, d: 4 })
                .collect(),
            processes: vec![
                ProcessSpec::EProcess {
                    rule: RuleSpec::Uniform,
                },
                ProcessSpec::Srw,
            ],
            trials: 3,
            target: Target::VertexCover,
            metrics: vec![],
            start: 0,
            cap: CapSpec::NLogN(5_000.0),
            resample: Some(ResamplePlan { walks_per_graph: 3 }),
        }
    }

    #[test]
    fn analyze_produces_one_series_per_process() {
        let report = run(
            &sweep_spec(&[64, 128, 256, 512]),
            &RunOptions {
                threads: 2,
                base_seed: 5,
            },
        )
        .unwrap();
        let scaling = analyze(&report).unwrap();
        assert_eq!(scaling.series.len(), 2);
        assert_eq!(scaling.series[0].process, "e-process(uniform)");
        assert_eq!(scaling.series[0].series, STEPS_SERIES);
        assert_eq!(scaling.series[1].process, "srw");
        for s in &scaling.series {
            assert_eq!(s.points.len(), 4);
            assert!(!s.selection.fits.is_empty());
            // The e-process on an even-degree expander grows linearly.
            if s.process.starts_with("e-process") {
                assert!(
                    s.selection.preferred.is_linear(),
                    "e-process preferred {:?}",
                    s.selection.preferred
                );
            }
        }
    }

    #[test]
    fn analyze_is_a_pure_function_of_the_report() {
        let report = run(
            &sweep_spec(&[64, 128, 256]),
            &RunOptions {
                threads: 3,
                base_seed: 9,
            },
        )
        .unwrap();
        assert_eq!(analyze(&report).unwrap(), analyze(&report).unwrap());
    }

    #[test]
    fn degenerate_sweeps_surface_errors_not_panics() {
        // Two sizes only: below MIN_SWEEP_POINTS.
        let report = run(
            &sweep_spec(&[64, 128]),
            &RunOptions {
                threads: 1,
                base_seed: 1,
            },
        )
        .unwrap();
        let err = analyze(&report).unwrap_err();
        assert!(matches!(err, ScalingError::Series { .. }), "{err}");
        assert!(err.to_string().contains("growth-law fit"), "{err}");

        // Identical sizes: no growth information.
        let report = run(
            &sweep_spec(&[64, 64, 64]),
            &RunOptions {
                threads: 1,
                base_seed: 2,
            },
        )
        .unwrap();
        assert!(analyze(&report).is_err());

        // Nothing completes within a 1-step cap: zero resolved sizes.
        let mut capped = sweep_spec(&[64, 128, 256]);
        capped.cap = CapSpec::Absolute(1);
        let report = run(
            &capped,
            &RunOptions {
                threads: 1,
                base_seed: 3,
            },
        )
        .unwrap();
        let err = analyze(&report).unwrap_err();
        assert!(
            matches!(
                err,
                ScalingError::Series {
                    source: FitError::TooFewPoints { .. },
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn deterministic_cycle_sweep_is_exactly_linear() {
        // The E-process walks a cycle deterministically: CV = n - 1 and
        // m = n, so the affine model a + b·m fits with zero residual and
        // must be preferred over c·m (which cannot absorb the -1).
        let spec = ExperimentSpec {
            graphs: [32usize, 64, 128, 256]
                .iter()
                .map(|&n| GraphSpec::Cycle { n })
                .collect(),
            processes: vec![ProcessSpec::EProcess {
                rule: RuleSpec::Uniform,
            }],
            resample: None,
            ..sweep_spec(&[64])
        };
        let report = run(
            &spec,
            &RunOptions {
                threads: 1,
                base_seed: 7,
            },
        )
        .unwrap();
        let scaling = analyze(&report).unwrap();
        let sel = &scaling.series[0].selection;
        assert_eq!(sel.preferred, GrowthModel::AffineEdges);
        let fit = sel.preferred_fit();
        assert!((fit.fit.slope - 1.0).abs() < 1e-9);
        assert!((fit.fit.intercept + 1.0).abs() < 1e-6);
    }
}
