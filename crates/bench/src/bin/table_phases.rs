//! **T-phase**: the blue/red phase structure behind the proofs.
//!
//! On even-degree graphs blue phases are long (the first one consumes a
//! constant fraction of the edges, Observation 10 lets it run until it
//! closes at the start); on odd-degree graphs the first blue phase dies at
//! the first revisit of an exhausted vertex — a birthday-paradox `Θ(√n)`
//! — which is why the E-process loses its linear-time behaviour there
//! (§5). This table makes that mechanism visible.

use eproc_bench::{rng_for, save_table, Config, Scale};
use eproc_core::rule::UniformRule;
use eproc_core::segments::trace_phases;
use eproc_core::EProcess;
use eproc_graphs::generators;
use eproc_stats::{SeedSequence, Summary, TextTable};

const REPS: usize = 5;

fn main() {
    let config = Config::from_args();
    let seeds = SeedSequence::new(config.seed);
    println!("Blue/red phase structure of the E-process on random r-regular graphs\n");
    let mut table = TextTable::new(vec![
        "r",
        "n",
        "first blue len",
        "first/sqrt(n)",
        "first/m",
        "#blue phases",
        "total blue/m",
        "closed (Obs 10)",
    ]);
    let sizes: Vec<usize> = match config.scale {
        Scale::Quick => vec![4_000, 16_000, 64_000],
        Scale::Paper => vec![16_000, 64_000, 256_000],
    };
    for &r in &[3usize, 4, 5, 6] {
        for &n in &sizes {
            let mut graph_rng = rng_for(seeds.derive(&[r as u64, n as u64]));
            let g = generators::connected_random_regular(n, r, &mut graph_rng).unwrap();
            let cap = (2_000.0 * n as f64 * (n as f64).ln()) as u64;
            let mut firsts = Vec::new();
            let mut phase_counts = Vec::new();
            let mut blue_fracs = Vec::new();
            let mut all_closed = true;
            for rep in 0..REPS {
                let mut rng = rng_for(seeds.derive(&[r as u64, n as u64, rep as u64]));
                let mut walk = EProcess::new(&g, 0, UniformRule::new());
                let trace = trace_phases(&mut walk, cap, &mut rng);
                firsts.push(trace.first_blue_length() as f64);
                phase_counts.push(trace.blue_phase_count() as f64);
                blue_fracs.push(trace.total_blue() as f64 / g.m() as f64);
                if r % 2 == 0 && !trace.blue_phases_closed() {
                    all_closed = false;
                }
            }
            assert!(all_closed, "Observation 10 violated for even r = {r}");
            let first = Summary::from_slice(&firsts).mean;
            table.push_row(vec![
                r.to_string(),
                n.to_string(),
                format!("{first:.0}"),
                format!("{:.2}", first / (n as f64).sqrt()),
                format!("{:.3}", first / g.m() as f64),
                format!("{:.0}", Summary::from_slice(&phase_counts).mean),
                format!("{:.3}", Summary::from_slice(&blue_fracs).mean),
                if r % 2 == 0 {
                    "yes".into()
                } else {
                    "n/a (odd)".into()
                },
            ]);
        }
    }
    println!("{table}");
    let p = save_table("table_phases", &table).expect("write csv");
    println!("csv: {}", p.display());
}
