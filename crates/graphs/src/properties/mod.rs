//! Structural graph properties used by the paper's analysis.
//!
//! * [`connectivity`] — connectedness and components (every theorem assumes
//!   a connected graph).
//! * [`degrees`] — even-degree and regularity checks (the paper's standing
//!   assumption is "connected even degree graphs of constant maximum
//!   degree").
//! * [`bipartite`] — bipartiteness (`λ_n = -1` forces the lazy-walk trick,
//!   §2.1 of the paper).
//! * [`girth`] — girth and bounded-girth detection (Theorem 3).
//! * [`diameter`] — eccentricities and diameter (rotor-router comparison).
//! * [`euler`] — Eulerian circuits and cycle decompositions of even-degree
//!   (sub)graphs (the structure behind Observations 10 and 11).
//! * [`cycles`] — exact short-cycle counts `N_k` (Corollary 4's proof).
//! * [`density`] — subgraph edge-density checks, property **P2** of §4.
//! * [`lgood`] — `ℓ`-goodness: minimal even-degree subgraphs through a
//!   vertex (the paper's local expansion property).

pub mod bipartite;
pub mod connectivity;
pub mod cycles;
pub mod degrees;
pub mod density;
pub mod diameter;
pub mod euler;
pub mod girth;
pub mod lgood;
