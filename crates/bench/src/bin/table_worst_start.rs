//! **T-wstart**: the cover time is `max_v C_v` — start-vertex sensitivity.
//!
//! The paper defines `C_V(Y, G) = max_v C_v`. On vertex-transitive or
//! expander-like graphs the start barely matters; on the lollipop it
//! matters enormously for the SRW. This table measures the spread
//! (worst vs best vs fixed-start mean) for the E-process and the SRW.

use eproc_bench::{rng_for, save_table, Config};
use eproc_core::cover::{run_cover, worst_start_cover, CoverTarget};
use eproc_core::rule::UniformRule;
use eproc_core::srw::SimpleRandomWalk;
use eproc_core::{EProcess, WalkProcess};
use eproc_graphs::{generators, Graph, Vertex};
use eproc_stats::{SeedSequence, TextTable};

const RUNS_PER_START: usize = 8;

fn mean_from(g: &Graph, start: Vertex, srw: bool, rng: &mut rand::rngs::SmallRng) -> f64 {
    let mut total = 0u64;
    for _ in 0..RUNS_PER_START {
        let steps = if srw {
            let mut w = SimpleRandomWalk::new(g, start);
            run_cover(&mut w, CoverTarget::Vertices, u64::MAX >> 1, rng)
        } else {
            let mut w = EProcess::new(g, start, UniformRule::new());
            run_cover(&mut w, CoverTarget::Vertices, u64::MAX >> 1, rng)
        };
        total += steps.steps_to_vertex_cover.expect("covers");
    }
    total as f64 / RUNS_PER_START as f64
}

fn main() {
    let config = Config::from_args();
    let seeds = SeedSequence::new(config.seed);
    println!("Start-vertex sensitivity: CV = max_v C_v vs fixed-start means\n");
    let mut table = TextTable::new(vec![
        "graph",
        "process",
        "worst start",
        "worst mean",
        "start-0 mean",
        "worst/start-0",
    ]);
    let mut graph_rng = rng_for(seeds.derive(&[0]));
    let graphs: Vec<(String, Graph)> = vec![
        (
            "random 4-regular(128)".into(),
            generators::connected_random_regular(128, 4, &mut graph_rng).unwrap(),
        ),
        ("torus 12x12".into(), generators::torus2d(12, 12)),
        ("lollipop(24,24)".into(), generators::lollipop(24, 24)),
    ];
    for (name, g) in &graphs {
        for (process, srw) in [("E-process", false), ("SRW", true)] {
            let mut rng = rng_for(seeds.derive(&[1, g.n() as u64, srw as u64]));
            let (worst_v, worst_mean) = if srw {
                worst_start_cover(
                    g,
                    |start, _| -> Box<dyn WalkProcess> {
                        Box::new(SimpleRandomWalk::new(g, start))
                    },
                    RUNS_PER_START,
                    u64::MAX >> 1,
                    &mut rng,
                )
            } else {
                worst_start_cover(
                    g,
                    |start, _| -> Box<dyn WalkProcess> {
                        Box::new(EProcess::new(g, start, UniformRule::new()))
                    },
                    RUNS_PER_START,
                    u64::MAX >> 1,
                    &mut rng,
                )
            };
            let from0 = mean_from(g, 0, srw, &mut rng);
            table.push_row(vec![
                name.clone(),
                process.into(),
                worst_v.to_string(),
                format!("{worst_mean:.0}"),
                format!("{from0:.0}"),
                format!("{:.2}", worst_mean / from0),
            ]);
        }
    }
    println!("{table}");
    println!("note: on expanders and tori the start barely matters for either process");
    println!("(ratios 1.0-1.3). The lollipop flips the intuition: the E-process is the");
    println!("start-sensitive one — the lollipop has odd degrees, so Observation 10");
    println!("does not apply, and a mid-path start leaves stranded blue edges on both");
    println!("sides that the embedded random walk must re-reach across the path");
    println!("(quadratic per crossing). From the clique (start 0) its blue sweep");
    println!("consumes the path in one pass. Even-degree structure is what makes the");
    println!("E-process start-insensitive.");
    let p = save_table("table_worst_start", &table).expect("write csv");
    println!("csv: {}", p.display());
}
