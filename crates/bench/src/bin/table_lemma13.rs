//! **T-l13**: Lemma 13's exponential tail, measured.
//!
//! For `d(S) ≤ m/(6 log n)` and `t ≥ 7m/(d(S)(1−λmax))`,
//! `Pr(S unvisited at t) ≤ exp(−t·d(S)·(1−λmax)/14m)`. We sample many
//! independent SRW runs on a random 4-regular expander and compare the
//! empirical survival probability with the bound at several multiples of
//! the threshold time.

use eproc_bench::{rng_for, save_table, Config, Scale};
use eproc_core::srw::SimpleRandomWalk;
use eproc_core::WalkProcess;
use eproc_graphs::{generators, Graph, Vertex};
use eproc_spectral::lanczos::lanczos;
use eproc_stats::{SeedSequence, TextTable};
use eproc_theory::{lemma13_min_t, lemma13_unvisited_tail};

fn survival_probability(
    g: &Graph,
    set: &[Vertex],
    t: u64,
    runs: usize,
    rng: &mut rand::rngs::SmallRng,
) -> f64 {
    let mut in_set = vec![false; g.n()];
    for &v in set {
        in_set[v] = true;
    }
    let mut survived = 0usize;
    'run: for _ in 0..runs {
        // Start away from the set (vertex 0 is excluded from sets below).
        let mut walk = SimpleRandomWalk::new(g, 0);
        for _ in 0..t {
            let s = walk.advance(rng);
            if in_set[s.to] {
                continue 'run;
            }
        }
        survived += 1;
    }
    survived as f64 / runs as f64
}

fn main() {
    let config = Config::from_args();
    let seeds = SeedSequence::new(config.seed);
    let (n, runs) = match config.scale {
        Scale::Quick => (2_000usize, 400usize),
        Scale::Paper => (16_000, 1_000),
    };
    let mut graph_rng = rng_for(seeds.derive(&[0]));
    let g = generators::connected_random_regular(n, 4, &mut graph_rng).unwrap();
    let gap = 1.0 - lanczos(&g, 120).lambda_max();
    println!(
        "Lemma 13 tail on a random 4-regular graph (n = {n}, gap = {gap:.3}, {runs} runs/point)\n"
    );
    let mut table = TextTable::new(vec![
        "|S|",
        "d(S)",
        "t/t_min",
        "t",
        "empirical P(unvisited)",
        "Lemma 13 bound",
        "within",
    ]);
    for set_size in [1usize, 2, 4] {
        // Spread the set across the vertex range, away from the start 0.
        let set: Vec<Vertex> = (1..=set_size).map(|i| i * (n / (set_size + 1))).collect();
        let d_s: usize = set.iter().map(|&v| g.degree(v)).sum();
        let t_min = lemma13_min_t(d_s, g.m(), gap);
        // Sub-threshold multiples (bound not claimed there) show where the
        // true survival probability lives; the lemma's regime follows.
        for mult in [0.01f64, 0.05, 0.25, 1.0, 2.0, 4.0] {
            let t = (t_min * mult).ceil() as u64;
            let mut rng = rng_for(seeds.derive(&[set_size as u64, (mult * 100.0) as u64]));
            let empirical = survival_probability(&g, &set, t, runs, &mut rng);
            let bound = lemma13_unvisited_tail(t as f64, d_s, g.m(), gap);
            let claimed = mult >= 1.0;
            if claimed {
                assert!(
                    empirical <= bound + 3.0 * (bound / runs as f64).sqrt() + 0.02,
                    "Lemma 13 violated beyond sampling noise: {empirical} > {bound}"
                );
            }
            table.push_row(vec![
                set_size.to_string(),
                d_s.to_string(),
                format!("{mult}"),
                t.to_string(),
                format!("{empirical:.4}"),
                format!("{bound:.4}"),
                if !claimed {
                    "(below threshold)".into()
                } else if empirical <= bound {
                    "yes".into()
                } else {
                    "within noise".into()
                },
            ]);
        }
    }
    println!("{table}");
    let p = save_table("table_lemma13", &table).expect("write csv");
    println!("csv: {}", p.display());
}
