//! The V-process: a walk preferring unvisited *vertices*.
//!
//! §1 of the paper: "The idea that the vertex cover time of a random walk
//! could be reduced by choosing unvisited neighbour vertices whenever
//! possible seems attractive and often arises in discussion", studied
//! experimentally alongside the E-process in the companion report \[4\]
//! (*Speeding up random walks by choosing unvisited edges or vertices*).
//! At each step: if the current vertex has unvisited neighbours, move to
//! one chosen uniformly at random; otherwise take a simple-random-walk
//! step.
//!
//! Unlike the E-process there is no parity structure to exploit (a vertex
//! is consumed on first touch), so no analogue of Observation 10 holds;
//! the `table_vprocess` experiment compares the two empirically.

use crate::process::{Step, StepKind, WalkProcess};
use eproc_graphs::{Graph, Vertex};
use rand::{Rng, RngCore};

/// The unvisited-vertex-preferring walk.
#[derive(Debug, Clone)]
pub struct VProcess<'g> {
    g: &'g Graph,
    current: Vertex,
    steps: u64,
    visited: Vec<bool>,
    unvisited: usize,
    scratch: Vec<usize>,
}

impl<'g> VProcess<'g> {
    /// Creates a V-process at `start` (which counts as visited).
    ///
    /// # Panics
    ///
    /// Panics if `start >= g.n()`.
    pub fn new(g: &'g Graph, start: Vertex) -> VProcess<'g> {
        assert!(start < g.n(), "start vertex {start} out of range");
        let mut visited = vec![false; g.n()];
        visited[start] = true;
        VProcess {
            g,
            current: start,
            steps: 0,
            visited,
            unvisited: g.n() - 1,
            scratch: Vec::new(),
        }
    }

    /// `true` if `v` has been visited.
    ///
    /// # Panics
    ///
    /// Panics if `v >= g.n()`.
    pub fn vertex_visited(&self, v: Vertex) -> bool {
        self.visited[v]
    }

    /// Number of vertices not yet visited.
    pub fn unvisited_vertex_count(&self) -> usize {
        self.unvisited
    }
}

impl<'g> WalkProcess for VProcess<'g> {
    fn graph(&self) -> &Graph {
        self.g
    }

    fn current(&self) -> Vertex {
        self.current
    }

    fn steps(&self) -> u64 {
        self.steps
    }

    fn advance(&mut self, mut rng: &mut dyn RngCore) -> Step {
        self.advance_rng(&mut rng)
    }

    fn advance_rng<R: RngCore>(&mut self, rng: &mut R) -> Step {
        let v = self.current;
        let d = self.g.degree(v);
        assert!(d > 0, "V-process stuck at isolated vertex {v}");
        self.scratch.clear();
        for a in self.g.arc_range(v) {
            if !self.visited[self.g.arc_target(a)] {
                self.scratch.push(a);
            }
        }
        let (arc, kind) = if self.scratch.is_empty() {
            (
                self.g.arc_range(v).start + rng.gen_range(0..d),
                StepKind::Red,
            )
        } else {
            (
                self.scratch[rng.gen_range(0..self.scratch.len())],
                StepKind::Blue,
            )
        };
        let to = self.g.arc_target(arc);
        if !self.visited[to] {
            self.visited[to] = true;
            self.unvisited -= 1;
        }
        self.current = to;
        self.steps += 1;
        Step {
            from: v,
            to,
            edge: Some(self.g.arc_edge(arc)),
            kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::run_to_vertex_cover;
    use eproc_graphs::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn prefers_unvisited_neighbors() {
        let g = generators::complete(10);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut w = VProcess::new(&g, 0);
        // On K_n every step reaches a fresh vertex until all are seen:
        // exactly n - 1 blue steps.
        for _ in 0..9 {
            let s = w.advance(&mut rng);
            assert_eq!(s.kind, StepKind::Blue);
        }
        assert_eq!(w.unvisited_vertex_count(), 0);
        assert_eq!(w.advance(&mut rng).kind, StepKind::Red);
    }

    #[test]
    fn covers_cycle_in_n_minus_1() {
        let g = generators::cycle(30);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut w = VProcess::new(&g, 0);
        let cover = run_to_vertex_cover(&mut w, &g, &mut rng).unwrap();
        assert_eq!(cover.steps, 29, "V-process never backtracks on a cycle");
    }

    #[test]
    fn visit_bookkeeping_consistent() {
        let g = generators::torus2d(4, 4);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut w = VProcess::new(&g, 5);
        assert!(w.vertex_visited(5));
        assert_eq!(w.unvisited_vertex_count(), 15);
        for _ in 0..500 {
            w.advance(&mut rng);
        }
        let count = (0..g.n()).filter(|&v| !w.vertex_visited(v)).count();
        assert_eq!(count, w.unvisited_vertex_count());
        assert_eq!(count, 0, "500 steps cover a 16-vertex torus");
    }

    #[test]
    fn linearish_on_even_regular() {
        let mut seed_rng = SmallRng::seed_from_u64(4);
        let g = generators::connected_random_regular(1000, 4, &mut seed_rng).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        let mut w = VProcess::new(&g, 0);
        let cover = run_to_vertex_cover(&mut w, &g, &mut rng).unwrap();
        // [4] reports near-linear behaviour for the V-process on regular
        // graphs as well; sanity-bound it loosely.
        assert!(cover.steps < 30 * g.n() as u64, "CV = {}", cover.steps);
    }
}
