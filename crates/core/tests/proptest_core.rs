//! Property tests for the walk processes and the cover harness.

use eproc_core::choice::RandomWalkWithChoice;
use eproc_core::cover::{run_cover, CoverTarget};
use eproc_core::fair::{LeastUsedFirst, OldestFirst};
use eproc_core::rotor::RotorRouter;
use eproc_core::rule::{FirstPortRule, UniformRule};
use eproc_core::srw::{LazyRandomWalk, SimpleRandomWalk};
use eproc_core::vprocess::VProcess;
use eproc_core::{EProcess, StepKind, WalkProcess};
use eproc_graphs::Graph;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Strategy: a connected random simple graph on `3..=14` vertices.
fn arb_connected_graph() -> impl Strategy<Value = Graph> {
    (
        3usize..14,
        proptest::collection::vec(0usize..1000, 13),
        proptest::collection::vec((0usize..14, 0usize..14), 0..28),
    )
        .prop_map(|(n, parents, extra)| {
            let mut edges = Vec::new();
            let mut seen = std::collections::HashSet::new();
            for v in 1..n {
                let p = parents[v - 1] % v;
                seen.insert((p, v));
                edges.push((p, v));
            }
            for (a, b) in extra {
                let (u, v) = (a % n, b % n);
                if u != v {
                    let key = (u.min(v), u.max(v));
                    if seen.insert(key) {
                        edges.push(key);
                    }
                }
            }
            Graph::from_edges(n, &edges).expect("valid by construction")
        })
}

/// Every step of every process must move along an actual edge (or hold,
/// for the lazy walk), and the harness invariants must hold.
fn check_step_validity<W: WalkProcess>(g: &Graph, mut walk: W, seed: u64, allow_hold: bool) {
    let mut rng = SmallRng::seed_from_u64(seed);
    for _ in 0..200 {
        let before = walk.current();
        let steps_before = walk.steps();
        let s = walk.advance(&mut rng);
        assert_eq!(s.from, before);
        assert_eq!(walk.current(), s.to);
        assert_eq!(walk.steps(), steps_before + 1);
        match s.edge {
            Some(e) => {
                let (u, v) = g.endpoints(e);
                assert!(
                    (s.from == u && s.to == v) || (s.from == v && s.to == u),
                    "step {s:?} does not match edge {e} = ({u},{v})"
                );
            }
            None => {
                assert!(allow_hold, "only lazy holds may omit the edge");
                assert_eq!(s.from, s.to);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn all_processes_take_valid_steps(g in arb_connected_graph(), seed in 0u64..1000) {
        check_step_validity(&g, EProcess::new(&g, 0, UniformRule::new()), seed, false);
        check_step_validity(&g, EProcess::new(&g, 0, FirstPortRule), seed, false);
        check_step_validity(&g, SimpleRandomWalk::new(&g, 0), seed, false);
        check_step_validity(&g, LazyRandomWalk::new(&g, 0), seed, true);
        check_step_validity(&g, RotorRouter::new(&g, 0), seed, false);
        check_step_validity(&g, RandomWalkWithChoice::new(&g, 0, 2), seed, false);
        check_step_validity(&g, OldestFirst::new(&g, 0), seed, false);
        check_step_validity(&g, LeastUsedFirst::new(&g, 0), seed, false);
        check_step_validity(&g, VProcess::new(&g, 0), seed, false);
    }

    #[test]
    fn cover_lower_bounds(g in arb_connected_graph(), seed in 0u64..1000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut walk = EProcess::new(&g, 0, UniformRule::new());
        let run = run_cover(&mut walk, CoverTarget::Both, 10_000_000, &mut rng);
        let cv = run.steps_to_vertex_cover.expect("connected graph covers");
        let ce = run.steps_to_edge_cover.expect("connected graph covers");
        // No walk-based process covers n vertices in < n-1 steps, nor m
        // edges in < m steps.
        prop_assert!(cv >= (g.n() - 1) as u64);
        prop_assert!(ce >= g.m() as u64);
        prop_assert!(cv <= ce);
        prop_assert_eq!(run.vertices_visited, g.n());
        prop_assert_eq!(run.edges_visited, g.m());
        prop_assert_eq!(run.blue_steps + run.red_steps, run.steps);
        // Observation 12: blue steps bounded by m.
        prop_assert!(run.blue_steps <= g.m() as u64);
    }

    #[test]
    fn eprocess_blue_degree_equals_bitmap(g in arb_connected_graph(), seed in 0u64..500) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut walk = EProcess::new(&g, 0, UniformRule::new());
        for _ in 0..100 {
            walk.advance(&mut rng);
            let visited = walk.visited_edges();
            for v in g.vertices() {
                let expect = g.ports(v).filter(|&(_, _, e)| !visited.get(e)).count();
                prop_assert_eq!(walk.blue_degree(v), expect);
            }
            if walk.unvisited_edge_count() == 0 {
                break;
            }
        }
    }

    #[test]
    fn rotor_trajectory_is_rng_independent(g in arb_connected_graph(), s1 in 0u64..100, s2 in 0u64..100) {
        let mut rng1 = SmallRng::seed_from_u64(s1);
        let mut rng2 = SmallRng::seed_from_u64(s2 ^ 0xdead);
        let mut a = RotorRouter::new(&g, 0);
        let mut b = RotorRouter::new(&g, 0);
        for _ in 0..100 {
            prop_assert_eq!(a.advance(&mut rng1), b.advance(&mut rng2));
        }
    }

    #[test]
    fn vprocess_blue_steps_bounded_by_n(g in arb_connected_graph(), seed in 0u64..500) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut walk = VProcess::new(&g, 0);
        let mut blue = 0u64;
        for _ in 0..2000 {
            if walk.advance(&mut rng).kind == StepKind::Blue {
                blue += 1;
            }
        }
        // Each blue step consumes a fresh vertex: at most n - 1 of them.
        prop_assert!(blue <= (g.n() - 1) as u64);
        prop_assert_eq!(walk.unvisited_vertex_count(), 0);
    }

    #[test]
    fn deterministic_explorers_cover(g in arb_connected_graph()) {
        // Rotor-router and Least-Used-First both cover within O(m * D)
        // on these tiny graphs; generous cap 100 * m * n.
        let cap = 100 * (g.m() as u64 + 1) * (g.n() as u64);
        let mut rng = SmallRng::seed_from_u64(0);
        let mut rr = RotorRouter::new(&g, 0);
        let run = run_cover(&mut rr, CoverTarget::Vertices, cap, &mut rng);
        prop_assert!(run.steps_to_vertex_cover.is_some(), "rotor failed to cover");
        let mut luf = LeastUsedFirst::new(&g, 0);
        let run = run_cover(&mut luf, CoverTarget::Edges, cap, &mut rng);
        prop_assert!(run.steps_to_edge_cover.is_some(), "LUF failed to cover edges");
    }

    #[test]
    fn mt19937_streams_are_reproducible(seed in 0u32..10_000) {
        use eproc_core::mt19937::Mt19937;
        let mut a = Mt19937::new(seed);
        let mut b = Mt19937::new(seed);
        for _ in 0..64 {
            prop_assert_eq!(a.next_int32(), b.next_int32());
        }
    }
}
