//! The E-process and companion walk processes.
//!
//! This crate implements the paper's primary contribution — the
//! **edge-process** (E-process): a walk that, whenever the current vertex
//! has unvisited incident edges, traverses one of them (chosen by an
//! arbitrary, possibly adversarial, rule **A**) and takes a simple random
//! walk step otherwise — together with every baseline the paper discusses:
//!
//! * [`EProcess`] with pluggable [`rule::EdgeRule`]s (uniform = the greedy
//!   random walk of Orenshtein–Shinkar, first/last port, round-robin,
//!   adversarial callback);
//! * [`srw::SimpleRandomWalk`], [`srw::LazyRandomWalk`],
//!   [`srw::WeightedRandomWalk`] (Theorem 5's lower bound applies to the
//!   last);
//! * [`rotor::RotorRouter`] (the Propp machine; related work §1);
//! * [`choice::RandomWalkWithChoice`] (Avin–Krishnamachari RWC(d));
//! * [`fair::OldestFirst`] and [`fair::LeastUsedFirst`] (locally fair
//!   exploration, Cooper–Ilcinkas–Klasing–Kosowski);
//! * the [`observe`] single-pass pipeline: composable [`observe::Observer`]s
//!   (cover, blanket, phases, blue census, hitting) fed by one generic
//!   driver [`observe::run_observed`], so one trajectory yields every
//!   requested metric; the [`cover`] and [`segments`] entry points are
//!   thin wrappers over it. The driver is a fully **monomorphized
//!   kernel** — generic over walk ([`WalkProcess::advance_rng`]), RNG and
//!   observer set ([`observe::ObserverSet`] tuples) — with
//!   [`observe::run_observed_dyn`] as the dynamic fallback, and
//!   [`interleave::run_observed_interleaved`] as the lockstep multi-trial
//!   variant that overlaps independent trials' CSR row fetches on one
//!   shared graph (bit-identical per-trial streams);
//! * [`bitset`] — the word-packed visited bitmap shared by the E-process
//!   and the observers;
//! * [`blue`] — blue-subgraph analytics: even-degree component census
//!   (Observation 11) and the isolated-star census behind the paper's §5
//!   `n/8` prediction for 3-regular graphs;
//! * [`mt19937`] — the Mersenne Twister used by the paper's own Python
//!   experiments, validated against the reference test vector.
//!
//! # Example: Corollary 2 in action
//!
//! ```
//! use eproc_core::{EProcess, rule::UniformRule, cover::run_to_vertex_cover};
//! use eproc_graphs::generators;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
//! let g = generators::connected_random_regular(400, 4, &mut rng)?;
//! let mut walk = EProcess::new(&g, 0, UniformRule::new());
//! let cover = run_to_vertex_cover(&mut walk, &g, &mut rng).expect("connected");
//! // Θ(n) cover time on even-degree random regular graphs.
//! assert!(cover.steps < 20 * g.n() as u64);
//! # Ok::<(), eproc_graphs::GraphError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod blue;
pub mod choice;
pub mod cover;
pub mod eprocess;
pub mod fair;
pub mod interleave;
pub mod mt19937;
pub mod observe;
pub mod process;
pub mod rotor;
pub mod segments;
pub mod srw;
pub mod vprocess;

pub use eprocess::rule;
pub use eprocess::{EProcess, GreedyRandomWalk};
pub use process::{Step, StepKind, WalkProcess};
