//! Phase segmentation of E-process trajectories.
//!
//! The paper's whole analysis is phase-based: maximal runs of blue
//! transitions (walks on unvisited edges) alternate with red runs (the
//! embedded simple random walk). This module segments a run into
//! [`Phase`]s and computes the statistics the proofs reason about — phase
//! counts, lengths, and the Observation-10 closure property.

use crate::eprocess::rule::EdgeRule;
use crate::eprocess::EProcess;
use crate::process::{StepKind, WalkProcess};
use eproc_graphs::Vertex;
use rand::RngCore;

/// One maximal run of same-coloured transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Phase {
    /// Blue (unvisited-edge walk) or red (embedded SRW).
    pub kind: StepKind,
    /// Vertex occupied when the phase began.
    pub start_vertex: Vertex,
    /// Vertex occupied when the phase ended.
    pub end_vertex: Vertex,
    /// Number of transitions in the phase.
    pub length: u64,
}

/// Trajectory-level phase statistics of a completed run.
#[derive(Debug, Clone)]
pub struct PhaseTrace {
    /// All phases in order.
    pub phases: Vec<Phase>,
    /// Total steps taken.
    pub steps: u64,
}

impl PhaseTrace {
    /// Number of blue phases.
    pub fn blue_phase_count(&self) -> usize {
        self.phases
            .iter()
            .filter(|p| p.kind == StepKind::Blue)
            .count()
    }

    /// Number of red phases.
    pub fn red_phase_count(&self) -> usize {
        self.phases
            .iter()
            .filter(|p| p.kind == StepKind::Red)
            .count()
    }

    /// Length of the first blue phase (0 if none — cannot happen on a
    /// graph with edges, since all edges start unvisited).
    pub fn first_blue_length(&self) -> u64 {
        self.phases
            .iter()
            .find(|p| p.kind == StepKind::Blue)
            .map_or(0, |p| p.length)
    }

    /// Lengths of all blue phases.
    pub fn blue_lengths(&self) -> Vec<u64> {
        self.phases
            .iter()
            .filter(|p| p.kind == StepKind::Blue)
            .map(|p| p.length)
            .collect()
    }

    /// Total blue steps (`t_B` of Observation 12).
    pub fn total_blue(&self) -> u64 {
        self.phases
            .iter()
            .filter(|p| p.kind == StepKind::Blue)
            .map(|p| p.length)
            .sum()
    }

    /// `true` if every *closed* blue phase ended at its start vertex
    /// (Observation 10; the final phase is exempt if the run was truncated
    /// mid-phase).
    pub fn blue_phases_closed(&self) -> bool {
        let last = self.phases.len().saturating_sub(1);
        self.phases
            .iter()
            .enumerate()
            .filter(|&(i, p)| p.kind == StepKind::Blue && i != last)
            .all(|(_, p)| p.start_vertex == p.end_vertex)
    }
}

/// Runs a fresh E-process until every edge is visited (or `max_steps`),
/// recording the phase structure.
///
/// # Panics
///
/// Panics if the walk has already taken steps.
pub fn trace_phases<A: EdgeRule>(
    walk: &mut EProcess<'_, A>,
    max_steps: u64,
    rng: &mut dyn RngCore,
) -> PhaseTrace {
    assert_eq!(walk.steps(), 0, "phase tracing requires a fresh walk");
    let mut phases: Vec<Phase> = Vec::new();
    let mut current: Option<Phase> = None;
    let mut t = 0u64;
    while walk.unvisited_edge_count() > 0 && t < max_steps {
        let from = walk.current();
        let step = walk.advance(rng);
        t += 1;
        match current.as_mut() {
            Some(phase) if phase.kind == step.kind => {
                phase.length += 1;
                phase.end_vertex = step.to;
            }
            _ => {
                if let Some(done) = current.take() {
                    phases.push(done);
                }
                current = Some(Phase {
                    kind: step.kind,
                    start_vertex: from,
                    end_vertex: step.to,
                    length: 1,
                });
            }
        }
    }
    if let Some(done) = current.take() {
        phases.push(done);
    }
    PhaseTrace { phases, steps: t }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eprocess::rule::UniformRule;
    use eproc_graphs::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn cycle_is_one_blue_phase() {
        let g = generators::cycle(9);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut walk = EProcess::new(&g, 0, UniformRule::new());
        let trace = trace_phases(&mut walk, 10_000, &mut rng);
        assert_eq!(trace.phases.len(), 1);
        assert_eq!(trace.blue_phase_count(), 1);
        assert_eq!(trace.first_blue_length(), 9);
        assert!(trace.blue_phases_closed());
        assert_eq!(trace.total_blue(), 9);
    }

    #[test]
    fn phases_alternate_colours() {
        let g = generators::torus2d(5, 5);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut walk = EProcess::new(&g, 0, UniformRule::new());
        let trace = trace_phases(&mut walk, 1_000_000, &mut rng);
        for pair in trace.phases.windows(2) {
            assert_ne!(pair[0].kind, pair[1].kind, "phases must alternate");
        }
        assert_eq!(trace.phases[0].kind, StepKind::Blue, "all edges start blue");
    }

    #[test]
    fn observation10_via_trace() {
        for seed in 0..10 {
            let g = generators::hypercube(4);
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut walk = EProcess::new(&g, 3, UniformRule::new());
            let trace = trace_phases(&mut walk, 1_000_000, &mut rng);
            assert!(trace.blue_phases_closed(), "seed {seed}");
            assert!(trace.total_blue() <= g.m() as u64);
        }
    }

    #[test]
    fn phase_lengths_sum_to_steps() {
        let g = generators::figure_eight(5);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut walk = EProcess::new(&g, 0, UniformRule::new());
        let trace = trace_phases(&mut walk, 1_000_000, &mut rng);
        let sum: u64 = trace.phases.iter().map(|p| p.length).sum();
        assert_eq!(sum, trace.steps);
        assert_eq!(sum, walk.steps());
    }

    #[test]
    fn truncation_respected() {
        let g = generators::torus2d(6, 6);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut walk = EProcess::new(&g, 0, UniformRule::new());
        let trace = trace_phases(&mut walk, 5, &mut rng);
        assert_eq!(trace.steps, 5);
        assert_eq!(
            trace.total_blue(),
            5,
            "first 5 steps are blue on a fresh even graph"
        );
    }

    #[test]
    fn phase_boundaries_are_consistent() {
        let g = generators::complete(7);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut walk = EProcess::new(&g, 2, UniformRule::new());
        let trace = trace_phases(&mut walk, 1_000_000, &mut rng);
        // Consecutive phases share a boundary vertex.
        for pair in trace.phases.windows(2) {
            assert_eq!(pair[0].end_vertex, pair[1].start_vertex);
        }
        assert_eq!(trace.phases[0].start_vertex, 2);
    }
}
