//! Cost of streaming quantile sketches versus per-trial buffering.
//!
//! Two measurements back the PR 9 aggregation refactor:
//!
//! 1. **Micro**: feed 2M values through the old shared-mode shape
//!    (buffer every value in a `Vec`, Welford moments, sort once at the
//!    end for exact quantiles) and through the streamed shape (Welford +
//!    [`QuantileSketch`] push, quantiles from the sketch). The streamed
//!    path must stay within ~1.1x of buffered wall clock — the sketch
//!    amortises its compactions to O(1) per push.
//! 2. **End-to-end**: a shared-mode engine run (the path the refactor
//!    migrated off `Vec<TrialOutcome>`), reporting wall clock and the
//!    sketches' actual memory: per-cell `retained()` is O(k·log(n/k)),
//!    not O(trials), and the whole report holds one sketch per
//!    (cell, column) — O(processes × columns × sketch), independent of
//!    the trial count.
//!
//! Writes `target/experiments/BENCH_sketch.json`.

use eproc_bench::output_dir;
use eproc_engine::executor::{run, RunOptions};
use eproc_engine::spec::{CapSpec, ExperimentSpec, GraphSpec, ProcessSpec, RuleSpec, Target};
use eproc_stats::{summary, OnlineStats, QuantileSketch};
use std::time::Instant;

const SAMPLES: usize = 5;
const N_VALUES: usize = 2_000_000;
const QS: [f64; 3] = [0.5, 0.9, 0.99];

/// Minimum seconds over `SAMPLES` timed runs — the least-interference
/// estimate when comparing variants on a shared machine.
fn best_secs<F: FnMut()>(mut f: F) -> f64 {
    (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// A fixed pseudo-random value stream (SplitMix64-shaped), so both
/// variants digest identical inputs.
fn values() -> impl Iterator<Item = f64> {
    let mut state = 0x8badf00d_u64;
    (0..N_VALUES).map(move |_| {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        ((z ^ (z >> 31)) % 1_000_000) as f64
    })
}

fn shared_spec() -> ExperimentSpec {
    ExperimentSpec {
        name: "sketch-overhead".into(),
        description: "streamed shared-mode aggregation bench".into(),
        graphs: vec![GraphSpec::Regular { n: 500, d: 3 }],
        processes: vec![
            ProcessSpec::EProcess {
                rule: RuleSpec::Uniform,
            },
            ProcessSpec::Srw,
        ],
        trials: 256,
        target: Target::VertexCover,
        metrics: vec![],
        start: 0,
        cap: CapSpec::NLogN(5_000.0),
        resample: None,
    }
}

fn main() {
    // Micro: buffered (Vec + Welford + one final sort) vs streamed
    // (Welford + sketch). `std::hint::black_box` keeps either variant's
    // summary from being optimised away.
    let buffered_secs = best_secs(|| {
        let mut stats = OnlineStats::new();
        let mut buf: Vec<f64> = Vec::new();
        for x in values() {
            stats.push(x);
            buf.push(x);
        }
        let qs: Vec<f64> = QS
            .iter()
            .map(|&q| summary::quantile(&buf, q).expect("nonempty"))
            .collect();
        std::hint::black_box((stats.mean(), qs));
    });
    let streamed_secs = best_secs(|| {
        let mut stats = OnlineStats::new();
        let mut sketch = QuantileSketch::new(777);
        for x in values() {
            stats.push(x);
            sketch.push(x);
        }
        let qs: Vec<f64> = QS
            .iter()
            .map(|&q| sketch.quantile(q).expect("nonempty"))
            .collect();
        std::hint::black_box((stats.mean(), qs));
    });
    let streamed_overhead = streamed_secs / buffered_secs;

    println!(
        "sketch_overhead/buffered: {:>8.2} ms (Vec of {N_VALUES} + final sort)",
        buffered_secs * 1e3
    );
    println!(
        "sketch_overhead/streamed: {:>8.2} ms ({streamed_overhead:.3}x, target <1.1x)",
        streamed_secs * 1e3
    );

    // End-to-end: a shared-mode run on the streamed aggregation path.
    let spec = shared_spec();
    let opts = RunOptions {
        base_seed: 12345,
        ..RunOptions::auto()
    };
    let report = run(&spec, &opts).expect("warm-up run");
    let engine_secs = best_secs(|| {
        run(&spec, &opts).expect("timed run");
    });
    // Memory shape: every cell keeps one steps sketch (this spec has no
    // extra metric columns), and each retains O(k·log(n/k)) items — far
    // below the trial count the old path buffered outcome-by-outcome.
    let sketches = report.cells.len();
    let retained_max = report
        .cells
        .iter()
        .map(|c| c.steps_sketch.retained())
        .max()
        .expect("nonempty report");
    let retained_total: usize = report.cells.iter().map(|c| c.steps_sketch.retained()).sum();
    assert!(
        retained_max <= spec.trials,
        "a sketch may never retain more than it was fed"
    );
    println!(
        "sketch_overhead/engine:   {:>8.2} ms (shared mode, {} trials x {} cells)",
        engine_secs * 1e3,
        spec.trials,
        sketches
    );
    println!(
        "sketch_overhead/memory:   {retained_max} items retained max per sketch \
         ({} trials fed), {retained_total} across {sketches} sketches",
        spec.trials
    );

    let json = format!(
        "{{\n  \"bench\": \"sketch_overhead\",\n  \
         \"n_values\": {N_VALUES},\n  \
         \"samples\": {SAMPLES},\n  \
         \"threads\": {},\n  \
         \"buffered_secs\": {:.6},\n  \
         \"streamed_secs\": {:.6},\n  \
         \"streamed_overhead\": {:.4},\n  \
         \"engine_shared_secs\": {:.6},\n  \
         \"engine_trials\": {},\n  \
         \"sketches\": {sketches},\n  \
         \"retained_max\": {retained_max},\n  \
         \"retained_total\": {retained_total}\n}}\n",
        opts.threads, buffered_secs, streamed_secs, streamed_overhead, engine_secs, spec.trials,
    );
    let dir = output_dir();
    std::fs::create_dir_all(&dir).expect("create output dir");
    let path = dir.join("BENCH_sketch.json");
    std::fs::write(&path, json).expect("write snapshot");
    println!("json: {}", path.display());
}
