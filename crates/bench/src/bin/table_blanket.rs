//! **T-blanket**: equation (4) — the blanket-time route to edge cover.
//!
//! §1: once every vertex `v` is visited `d(v)` times by the embedded
//! random walk, all edges are explored, and Ding–Lee–Peres gives
//! `t_bl(δ) = O(CV(SRW))`; hence `CE(E) = O(m + CV(SRW))`.
//!
//! Thin engine wrapper: the built-in `blanket` spec stops each trial at
//! the blanket time while a `cover` metric on the **same walk** records
//! `CV` and `CE` — one ensemble, one pass per trial, three columns. This
//! binary only reshapes the engine cells into the paper's presentation.

use eproc_bench::{metric_mean, run_engine_spec, save_table, Config};
use eproc_stats::TextTable;

fn main() {
    let config = Config::from_args();
    println!("Equation (4): blanket time t_bl(1/2) = O(CV(SRW)) and CE(E) = O(m + CV(SRW))\n");
    let (spec, graphs, report) = run_engine_spec("blanket", &config);
    let mut table = TextTable::new(vec![
        "graph",
        "n",
        "m",
        "t_bl(1/2)",
        "CV(SRW)",
        "t_bl/CV",
        "CE(E)",
        "(CE-m)/CV",
    ]);
    // Cell grid order: (graph, process) with processes = [e-process, srw].
    for (gi, (gspec, g)) in spec.graphs.iter().zip(&graphs).enumerate() {
        let eproc_cell = &report.cells[gi * spec.processes.len()];
        let srw_cell = &report.cells[gi * spec.processes.len() + 1];
        for cell in [eproc_cell, srw_cell] {
            assert_eq!(
                cell.completed, cell.trials,
                "{}/{}: blanket not reached in every trial",
                cell.graph, cell.process
            );
        }
        let bl = srw_cell.steps.mean();
        let cv = metric_mean(srw_cell, "cover.c_v");
        let ce = metric_mean(eproc_cell, "cover.c_e");
        let m = g.m() as f64;
        table.push_row(vec![
            gspec.label(),
            g.n().to_string(),
            g.m().to_string(),
            format!("{bl:.0}"),
            format!("{cv:.0}"),
            format!("{:.2}", bl / cv),
            format!("{ce:.0}"),
            format!("{:.3}", (ce - m) / cv),
        ]);
    }
    println!("{table}");
    let p = save_table("table_blanket", &table).expect("write csv");
    println!("csv: {}", p.display());
    let j = eproc_engine::report::save_json(&report, None).expect("write json");
    println!("json: {}", j.display());
}
