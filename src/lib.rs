//! # eproc — random walks which prefer unvisited edges
//!
//! Facade crate re-exporting the whole workspace: the E-process simulator
//! and baselines ([`core`]), the graph substrate ([`graphs`]), the spectral
//! toolkit ([`spectral`]), the paper's closed-form bounds ([`theory`]) and
//! statistics helpers ([`stats`]).
//!
//! This reproduces Berenbrink, Cooper, Friedetzky, *"Random walks which
//! prefer unvisited edges: exploring high girth even degree expanders in
//! linear time"* (PODC 2012 / RSA 46(1), 2015).
//!
//! ## Quickstart
//!
//! ```
//! use eproc::graphs::generators;
//! use eproc::core::{EProcess, rule::UniformRule, cover::run_to_vertex_cover};
//! use rand::SeedableRng;
//!
//! // A connected even-degree expander: random 4-regular graph.
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
//! let g = generators::connected_random_regular(500, 4, &mut rng)?;
//!
//! // The E-process covers it in O(n) steps (Corollary 2).
//! let mut walk = EProcess::new(&g, 0, UniformRule::new());
//! let result = run_to_vertex_cover(&mut walk, &g, &mut rng).expect("connected graph is covered");
//! assert!(result.steps < 20 * g.n() as u64);
//! # Ok::<(), eproc::graphs::GraphError>(())
//! ```

pub use eproc_core as core;
pub use eproc_graphs as graphs;
pub use eproc_spectral as spectral;
pub use eproc_stats as stats;
pub use eproc_theory as theory;
