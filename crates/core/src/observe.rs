//! The single-pass observer pipeline: one walk, every metric.
//!
//! Every quantity the paper reports — vertex/edge cover times (Theorem 1,
//! Corollary 2), blanket time, the blue/red phase structure of §3–§5, the
//! blue-subgraph star census behind the `n/8` prediction, and hitting
//! times — is a function of the *same* step stream. This module factors
//! that observation into code: an [`Observer`] consumes each
//! [`Step`] of a trajectory and produces [`Metrics`] at the end, and the
//! generic driver [`run_observed`] advances the walk **once** while feeding
//! every attached observer, so a trial wanting several metrics no longer
//! re-walks the graph once per metric.
//!
//! # The monomorphized kernel and the `ObserverSet` tuple pattern
//!
//! [`run_observed`] is generic over the walk, the RNG **and** the observer
//! set, so a call with concrete types compiles to one flat loop: the
//! walk's [`WalkProcess::advance_rng`] and every observer's
//! [`Observer::on_step`] inline with no per-step virtual dispatch.
//! Observer sets are expressed through the [`ObserverSet`] trait, which is
//! implemented for
//!
//! * **tuples** `(O1,)` through `(O1, O2, O3, O4, O5)` of (references to)
//!   concrete observers — the preferred form whenever the metric set is
//!   known at compile time, which is true for every caller measuring a
//!   fixed set of quantities:
//!
//!   ```
//!   # use eproc_core::observe::*;
//!   # use eproc_core::cover::CoverTarget;
//!   # use eproc_core::{EProcess, rule::UniformRule};
//!   # use eproc_graphs::generators;
//!   # use rand::SeedableRng;
//!   # let g = generators::torus2d(4, 4);
//!   # let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
//!   # let mut walk = EProcess::new(&g, 0, UniformRule::new());
//!   let mut cover = CoverObserver::new(CoverTarget::Both);
//!   let mut phases = PhaseObserver::new();
//!   let run = run_observed(
//!       &mut walk,
//!       &mut (&mut cover, &mut phases), // tuple => fully inlined kernel
//!       StopWhen::AllSatisfied,
//!       1_000_000,
//!       &mut rng,
//!   );
//!   # assert!(run.steps > 0);
//!   ```
//!
//! * **homogeneous slices / arrays / `Vec`s** `[O]` where `O: Observer` —
//!   which covers enum-dispatched observers (the engine's observer bank)
//!   *and*, because `&mut dyn Observer` itself implements [`Observer`],
//!   the dynamic fallback `[&mut dyn Observer]`. Use the dyn form only
//!   when the set of observers genuinely varies at runtime: it costs one
//!   virtual call per observer per step.
//!
//! Per-step stop-condition polling is gone too: the driver arms a
//! [`CompletionToken`] with the number of attached observers, each
//! observer's resolution decrements it exactly once, and the
//! [`StopWhen::AllSatisfied`] check is a single counter comparison.
//! (Observer satisfaction must therefore be **monotone** within a run —
//! true of every observer here, and of anything measuring a
//! first-occurrence time.)
//!
//! [`run_observed_dyn`] preserves the fully dynamic pre-kernel driver —
//! virtual `advance`, virtual observer fan-out, all-observers
//! `satisfied()` poll — both as the compatibility entry point for
//! `Box<dyn WalkProcess>` call sites and as the baseline the
//! `walk_kernel` benchmark measures the monomorphized kernel against.
//! Both drivers draw the identical RNG sequence and produce identical
//! trajectories (pinned by `crates/core/tests/kernel_equivalence.rs`).
//!
//! The legacy entry points ([`crate::cover::run_cover`],
//! [`crate::cover::blanket_time`], [`crate::segments::trace_phases`]) are
//! kept as thin wrappers over this pipeline.
//!
//! Observers are **reusable**: [`Observer::begin`] re-arms an observer for
//! a fresh trajectory, resizing (not reallocating) its scratch buffers —
//! word-packed [`BitSet`]s, so a re-arm touches `m / 64` words — and
//! ensemble executors amortise them across thousands of trials.

use crate::bitset::BitSet;
use crate::cover::{CoverError, CoverTarget};
use crate::process::{Step, StepKind, WalkProcess};
use crate::segments::{Phase, PhaseTrace};
use eproc_graphs::{Graph, Vertex};
use rand::RngCore;

/// Everything a [`CoverObserver`] measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoverMetrics {
    /// Step at which the last vertex was first visited, if vertex cover
    /// completed within the run.
    pub steps_to_vertex_cover: Option<u64>,
    /// Step at which the last edge was first traversed, if edge cover
    /// completed within the run.
    pub steps_to_edge_cover: Option<u64>,
    /// Blue (unvisited-edge) transitions observed.
    pub blue_steps: u64,
    /// Red transitions observed.
    pub red_steps: u64,
    /// Distinct vertices visited (including the start).
    pub vertices_visited: usize,
    /// Distinct edges traversed.
    pub edges_visited: usize,
}

/// What a [`BlanketObserver`] measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlanketMetrics {
    /// First step `t` (a multiple of `n`) at which every vertex `v` had
    /// been visited at least `δ π_v t` times; `None` if never within the
    /// run.
    pub steps_to_blanket: Option<u64>,
}

/// What a [`BlueCensusObserver`] measures (cf.
/// [`crate::blue::track_isolated_stars`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlueCensusMetrics {
    /// Vertices that at some point became isolated blue star centers,
    /// sorted.
    pub ever_star_centers: Vec<Vertex>,
    /// Steps until vertex cover (`None` if the run ended first).
    pub steps_to_vertex_cover: Option<u64>,
}

/// What a [`HittingObserver`] measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HittingMetrics {
    /// The vertex whose first-visit time is measured.
    pub target: Vertex,
    /// Step of the first visit (`Some(0)` if the walk starts there).
    pub steps_to_hit: Option<u64>,
}

/// The result of one observer, produced by [`Observer::finish`].
#[derive(Debug, Clone, PartialEq)]
pub enum Metrics {
    /// Cover-time measurements.
    Cover(CoverMetrics),
    /// Blanket-time measurement.
    Blanket(BlanketMetrics),
    /// Blue/red phase segmentation.
    Phases(PhaseTrace),
    /// Isolated blue star census.
    BlueCensus(BlueCensusMetrics),
    /// First-visit (hitting) time of a fixed vertex.
    Hitting(HittingMetrics),
}

/// A per-step metric accumulator fed by [`run_observed`].
///
/// Lifecycle: `begin` (re-)arms the observer for a trajectory starting at
/// `start` on `g`; `on_step` is called once per transition with the
/// 1-based step index; `satisfied` reports whether this observer's
/// measurement has resolved (used by [`StopWhen::AllSatisfied`]);
/// `finish` extracts the metrics (and may drain accumulated state).
/// After `finish`, `begin` may be called again — buffers are reused, not
/// reallocated.
///
/// `satisfied` must be **monotone** between `begin` and `finish`: once it
/// returns `true` it keeps returning `true` for the rest of the run. The
/// kernel driver latches satisfaction into a [`CompletionToken`] and
/// stops polling a resolved observer.
pub trait Observer {
    /// Re-arms the observer for a fresh trajectory on `g` starting at
    /// `start` (which counts as visited).
    fn begin(&mut self, g: &Graph, start: Vertex);

    /// Consumes one transition; `t` is the 1-based step index within the
    /// current run.
    fn on_step(&mut self, t: u64, step: &Step);

    /// `true` once this observer's measurement has resolved.
    fn satisfied(&self) -> bool;

    /// Snapshots the metrics accumulated since the last `begin`.
    fn finish(&mut self) -> Metrics;
}

impl<O: Observer + ?Sized> Observer for &mut O {
    fn begin(&mut self, g: &Graph, start: Vertex) {
        (**self).begin(g, start)
    }

    fn on_step(&mut self, t: u64, step: &Step) {
        (**self).on_step(t, step)
    }

    fn satisfied(&self) -> bool {
        (**self).satisfied()
    }

    fn finish(&mut self) -> Metrics {
        (**self).finish()
    }
}

impl<O: Observer + ?Sized> Observer for Box<O> {
    fn begin(&mut self, g: &Graph, start: Vertex) {
        (**self).begin(g, start)
    }

    fn on_step(&mut self, t: u64, step: &Step) {
        (**self).on_step(t, step)
    }

    fn satisfied(&self) -> bool {
        (**self).satisfied()
    }

    fn finish(&mut self) -> Metrics {
        (**self).finish()
    }
}

/// When [`run_observed`] stops (the step cap always applies).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopWhen {
    /// Stop as soon as every attached observer is satisfied.
    AllSatisfied,
    /// Run until the step cap regardless of observer satisfaction.
    Cap,
}

/// Trajectory-level facts returned by [`run_observed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObservedRun {
    /// Steps taken in this run (= the cap if the stop condition was not
    /// reached).
    pub steps: u64,
    /// Where the walk stopped.
    pub final_vertex: Vertex,
}

/// The unsatisfied-observer counter threaded through an [`ObserverSet`].
///
/// Armed with the number of attached observers; each observer's slot is
/// completed at most once (completions latch), and
/// [`CompletionToken::all_satisfied`] — the per-step stop check — is a
/// single integer comparison instead of an all-observers `satisfied()`
/// poll.
#[derive(Debug, Clone)]
pub struct CompletionToken {
    /// Bit `i` set ⇔ observer `i` has not yet resolved.
    pending: u128,
}

impl CompletionToken {
    /// Most observers one driver call can track.
    pub const MAX_OBSERVERS: usize = 128;

    /// Arms a token for `count` observers, all pending.
    ///
    /// # Panics
    ///
    /// Panics if `count > 128`.
    pub fn arm(count: usize) -> CompletionToken {
        assert!(
            count <= Self::MAX_OBSERVERS,
            "at most {} observers per run (got {count})",
            Self::MAX_OBSERVERS
        );
        CompletionToken {
            pending: if count == Self::MAX_OBSERVERS {
                u128::MAX
            } else {
                (1u128 << count) - 1
            },
        }
    }

    /// Marks observer `slot` as resolved; idempotent (a cleared bit stays
    /// cleared, so the hot path needs no branch).
    #[inline]
    pub fn complete(&mut self, slot: usize) {
        self.pending &= !(1u128 << slot);
    }

    /// `true` while observer `slot` has not resolved (i.e. it still needs
    /// its `satisfied()` checked).
    #[inline]
    pub fn is_pending(&self, slot: usize) -> bool {
        self.pending >> slot & 1 == 1
    }

    /// `true` once every observer has resolved.
    #[inline]
    pub fn all_satisfied(&self) -> bool {
        self.pending == 0
    }

    /// Number of observers still unresolved.
    pub fn unsatisfied(&self) -> usize {
        self.pending.count_ones() as usize
    }
}

/// A statically shaped collection of [`Observer`]s fed by [`run_observed`].
///
/// Implementations exist for tuples `(O1,)` … `(O1, O2, O3, O4, O5)` of
/// concrete observers (the monomorphized fast path — every `on_step`
/// inlines) and, as the dynamic fallback, for homogeneous slices, arrays
/// and `Vec`s of any observer type — including `[&mut dyn Observer]`,
/// since `&mut dyn Observer` implements [`Observer`].
///
/// An implementation must call [`CompletionToken::complete`] with an
/// observer's slot index when (and only when) that observer's
/// [`Observer::satisfied`] first turns `true`; the provided
/// implementations do this by polling `satisfied()` while the slot is
/// still pending and never again afterwards.
pub trait ObserverSet {
    /// Number of observers in the set.
    fn count(&self) -> usize;

    /// Arms every observer for a fresh trajectory and records
    /// already-satisfied ones (e.g. a hitting observer whose target is the
    /// start vertex) in `token`.
    fn begin_all(&mut self, g: &Graph, start: Vertex, token: &mut CompletionToken);

    /// Feeds one transition to every observer, completing newly resolved
    /// slots in `token`.
    fn on_step_all(&mut self, t: u64, step: &Step, token: &mut CompletionToken);
}

macro_rules! impl_observer_set_for_tuple {
    ($(($idx:tt, $name:ident)),+) => {
        impl<$($name: Observer),+> ObserverSet for ($($name,)+) {
            fn count(&self) -> usize {
                [$($idx as usize),+].len()
            }

            fn begin_all(&mut self, g: &Graph, start: Vertex, token: &mut CompletionToken) {
                $(
                    self.$idx.begin(g, start);
                    if self.$idx.satisfied() {
                        token.complete($idx);
                    }
                )+
            }

            #[inline]
            fn on_step_all(&mut self, t: u64, step: &Step, token: &mut CompletionToken) {
                $(
                    self.$idx.on_step(t, step);
                    if token.is_pending($idx) && self.$idx.satisfied() {
                        token.complete($idx);
                    }
                )+
            }
        }
    };
}

impl_observer_set_for_tuple!((0, O1));
impl_observer_set_for_tuple!((0, O1), (1, O2));
impl_observer_set_for_tuple!((0, O1), (1, O2), (2, O3));
impl_observer_set_for_tuple!((0, O1), (1, O2), (2, O3), (3, O4));
impl_observer_set_for_tuple!((0, O1), (1, O2), (2, O3), (3, O4), (4, O5));

impl<O: Observer> ObserverSet for [O] {
    fn count(&self) -> usize {
        self.len()
    }

    fn begin_all(&mut self, g: &Graph, start: Vertex, token: &mut CompletionToken) {
        for (i, obs) in self.iter_mut().enumerate() {
            obs.begin(g, start);
            if obs.satisfied() {
                token.complete(i);
            }
        }
    }

    #[inline]
    fn on_step_all(&mut self, t: u64, step: &Step, token: &mut CompletionToken) {
        for (i, obs) in self.iter_mut().enumerate() {
            obs.on_step(t, step);
            if token.is_pending(i) && obs.satisfied() {
                token.complete(i);
            }
        }
    }
}

impl<O: Observer, const N: usize> ObserverSet for [O; N] {
    fn count(&self) -> usize {
        N
    }

    fn begin_all(&mut self, g: &Graph, start: Vertex, token: &mut CompletionToken) {
        self[..].begin_all(g, start, token)
    }

    #[inline]
    fn on_step_all(&mut self, t: u64, step: &Step, token: &mut CompletionToken) {
        self[..].on_step_all(t, step, token)
    }
}

impl<O: Observer> ObserverSet for Vec<O> {
    fn count(&self) -> usize {
        self.len()
    }

    fn begin_all(&mut self, g: &Graph, start: Vertex, token: &mut CompletionToken) {
        self[..].begin_all(g, start, token)
    }

    #[inline]
    fn on_step_all(&mut self, t: u64, step: &Step, token: &mut CompletionToken) {
        self[..].on_step_all(t, step, token)
    }
}

/// Advances `walk` once per step, feeding every observer in `observers`,
/// until `stop` resolves or `cap` steps elapse — the monomorphized walk
/// kernel.
///
/// Generic over the walk, the observer set and the RNG: with concrete
/// types (`EProcess<UniformRule>`, a tuple of observers, `SmallRng`) the
/// whole per-step body — [`WalkProcess::advance_rng`], each
/// [`Observer::on_step`], the [`CompletionToken`] stop check — inlines
/// into one flat loop. Pass a `[&mut dyn Observer]` slice (or call a
/// dyn-typed walk through `&mut`) to fall back to dynamic dispatch where
/// runtime flexibility is worth the per-step cost; [`run_observed_dyn`]
/// bundles that fully dynamic shape.
///
/// The walk may have already taken steps; observers are `begin`-armed at
/// the walk's current position and all counters are relative to this
/// call. Both this kernel and [`run_observed_dyn`] draw the identical RNG
/// sequence for the same seed.
///
/// # Panics
///
/// Panics if more than [`CompletionToken::MAX_OBSERVERS`] observers are
/// attached.
pub fn run_observed<W, O, R>(
    walk: &mut W,
    observers: &mut O,
    stop: StopWhen,
    cap: u64,
    rng: &mut R,
) -> ObservedRun
where
    W: WalkProcess,
    O: ObserverSet + ?Sized,
    R: RngCore,
{
    let mut token = CompletionToken::arm(observers.count());
    {
        let g = walk.graph();
        let start = walk.current();
        observers.begin_all(g, start, &mut token);
    }
    let check_satisfied = matches!(stop, StopWhen::AllSatisfied);
    let mut t = 0u64;
    while t < cap {
        if check_satisfied && token.all_satisfied() {
            break;
        }
        let step = walk.advance_rng(rng);
        t += 1;
        observers.on_step_all(t, &step, &mut token);
    }
    ObservedRun {
        steps: t,
        final_vertex: walk.current(),
    }
}

/// The fully dynamic driver: virtual `advance`, dyn-observer fan-out and
/// an all-observers `satisfied()` poll per step — exactly the pre-kernel
/// hot path.
///
/// Kept for two reasons: third-party code holding `Box<dyn WalkProcess>` /
/// heterogeneous observer lists gets a zero-friction entry point, and the
/// `walk_kernel` benchmark uses it as the baseline the monomorphized
/// [`run_observed`] is measured against. Trajectories are identical to
/// [`run_observed`]'s for the same seed.
pub fn run_observed_dyn(
    walk: &mut dyn WalkProcess,
    observers: &mut [&mut dyn Observer],
    stop: StopWhen,
    cap: u64,
    rng: &mut dyn RngCore,
) -> ObservedRun {
    {
        let g = walk.graph();
        let start = walk.current();
        for obs in observers.iter_mut() {
            obs.begin(g, start);
        }
    }
    let mut t = 0u64;
    while t < cap {
        let done = match stop {
            StopWhen::AllSatisfied => observers.iter().all(|o| o.satisfied()),
            StopWhen::Cap => false,
        };
        if done {
            break;
        }
        let step = walk.advance(rng);
        t += 1;
        for obs in observers.iter_mut() {
            obs.on_step(t, &step);
        }
    }
    ObservedRun {
        steps: t,
        final_vertex: walk.current(),
    }
}

/// Tracks vertex and edge cover (and the blue/red split) of a trajectory.
#[derive(Debug, Clone)]
pub struct CoverObserver {
    target: CoverTarget,
    n: usize,
    m: usize,
    vertex_seen: BitSet,
    edge_seen: BitSet,
    vertices_visited: usize,
    edges_visited: usize,
    steps_to_vertex_cover: Option<u64>,
    steps_to_edge_cover: Option<u64>,
    blue_steps: u64,
    red_steps: u64,
}

impl CoverObserver {
    /// Creates an unarmed observer for `target`; buffers are sized by
    /// [`Observer::begin`].
    pub fn new(target: CoverTarget) -> CoverObserver {
        CoverObserver {
            target,
            n: 0,
            m: 0,
            vertex_seen: BitSet::new(),
            edge_seen: BitSet::new(),
            vertices_visited: 0,
            edges_visited: 0,
            steps_to_vertex_cover: None,
            steps_to_edge_cover: None,
            blue_steps: 0,
            red_steps: 0,
        }
    }

    /// Typed access to the accumulated metrics.
    pub fn cover_metrics(&self) -> CoverMetrics {
        CoverMetrics {
            steps_to_vertex_cover: self.steps_to_vertex_cover,
            steps_to_edge_cover: self.steps_to_edge_cover,
            blue_steps: self.blue_steps,
            red_steps: self.red_steps,
            vertices_visited: self.vertices_visited,
            edges_visited: self.edges_visited,
        }
    }
}

impl Observer for CoverObserver {
    fn begin(&mut self, g: &Graph, start: Vertex) {
        self.n = g.n();
        self.m = g.m();
        self.vertex_seen.clear_and_resize(self.n);
        self.edge_seen.clear_and_resize(self.m);
        self.vertex_seen.set(start);
        self.vertices_visited = 1;
        self.edges_visited = 0;
        self.steps_to_vertex_cover = if self.vertices_visited == self.n {
            Some(0)
        } else {
            None
        };
        self.steps_to_edge_cover = if self.m == 0 { Some(0) } else { None };
        self.blue_steps = 0;
        self.red_steps = 0;
    }

    #[inline]
    fn on_step(&mut self, t: u64, step: &Step) {
        match step.kind {
            StepKind::Blue => self.blue_steps += 1,
            StepKind::Red => self.red_steps += 1,
        }
        if self.vertex_seen.test_and_set(step.to) {
            self.vertices_visited += 1;
            if self.vertices_visited == self.n {
                self.steps_to_vertex_cover = Some(t);
            }
        }
        if let Some(e) = step.edge {
            if self.edge_seen.test_and_set(e) {
                self.edges_visited += 1;
                if self.edges_visited == self.m {
                    self.steps_to_edge_cover = Some(t);
                }
            }
        }
    }

    fn satisfied(&self) -> bool {
        match self.target {
            CoverTarget::Vertices => self.steps_to_vertex_cover.is_some(),
            CoverTarget::Edges => self.steps_to_edge_cover.is_some(),
            CoverTarget::Both => {
                self.steps_to_vertex_cover.is_some() && self.steps_to_edge_cover.is_some()
            }
        }
    }

    fn finish(&mut self) -> Metrics {
        Metrics::Cover(self.cover_metrics())
    }
}

/// Measures the Ding–Lee–Peres blanket time `τ_bl(δ)`: the first step `t`
/// at which every vertex `v` has been visited at least `δ π_v t` times.
/// The condition is checked every `n` steps, so the result has additive
/// granularity `n`.
#[derive(Debug, Clone)]
pub struct BlanketObserver {
    delta: f64,
    pi: Vec<f64>,
    visits: Vec<u64>,
    check_every: u64,
    /// Steps until the next blanket check — a countdown so the hot path
    /// needs no per-step division (`t % n`), only a decrement.
    until_check: u64,
    steps_to_blanket: Option<u64>,
}

impl BlanketObserver {
    /// Creates an unarmed observer.
    ///
    /// # Errors
    ///
    /// Returns [`CoverError::InvalidDelta`] if `delta ∉ (0, 1)`.
    pub fn new(delta: f64) -> Result<BlanketObserver, CoverError> {
        if !(delta > 0.0 && delta < 1.0) {
            return Err(CoverError::InvalidDelta(delta));
        }
        Ok(BlanketObserver {
            delta,
            pi: Vec::new(),
            visits: Vec::new(),
            check_every: 1,
            until_check: 1,
            steps_to_blanket: None,
        })
    }

    /// The measured blanket time, if reached.
    pub fn steps_to_blanket(&self) -> Option<u64> {
        self.steps_to_blanket
    }
}

impl Observer for BlanketObserver {
    fn begin(&mut self, g: &Graph, start: Vertex) {
        let n = g.n();
        let two_m = g.total_degree() as f64;
        self.pi.clear();
        self.pi
            .extend(g.vertices().map(|v| g.degree(v) as f64 / two_m));
        self.visits.clear();
        self.visits.resize(n, 0);
        self.visits[start] = 1;
        self.check_every = n.max(1) as u64;
        self.until_check = self.check_every;
        self.steps_to_blanket = None;
    }

    #[inline]
    fn on_step(&mut self, t: u64, step: &Step) {
        self.visits[step.to] += 1;
        self.until_check -= 1;
        if self.until_check == 0 {
            // `t` is a multiple of `check_every` here, by construction.
            self.until_check = self.check_every;
            if self.steps_to_blanket.is_none() {
                let tf = t as f64;
                let ok = self
                    .visits
                    .iter()
                    .zip(&self.pi)
                    .all(|(&v, &p)| v as f64 >= self.delta * p * tf);
                if ok {
                    self.steps_to_blanket = Some(t);
                }
            }
        }
    }

    fn satisfied(&self) -> bool {
        self.steps_to_blanket.is_some()
    }

    fn finish(&mut self) -> Metrics {
        Metrics::Blanket(BlanketMetrics {
            steps_to_blanket: self.steps_to_blanket,
        })
    }
}

/// Segments the trajectory into maximal same-coloured [`Phase`]s (the
/// blue/red structure of §3–§5). Satisfied once every edge has been
/// traversed, matching the legacy `trace_phases` stop condition.
#[derive(Debug, Clone, Default)]
pub struct PhaseObserver {
    m: usize,
    edge_seen: BitSet,
    edges_visited: usize,
    phases: Vec<Phase>,
    current: Option<Phase>,
    steps: u64,
}

impl PhaseObserver {
    /// Creates an unarmed observer.
    pub fn new() -> PhaseObserver {
        PhaseObserver::default()
    }

    /// The accumulated trace (closes the in-flight phase), leaving the
    /// observer intact.
    pub fn trace(&self) -> PhaseTrace {
        let mut phases = self.phases.clone();
        if let Some(cur) = self.current {
            phases.push(cur);
        }
        PhaseTrace {
            phases,
            steps: self.steps,
        }
    }
}

impl Observer for PhaseObserver {
    fn begin(&mut self, g: &Graph, _start: Vertex) {
        self.m = g.m();
        self.edge_seen.clear_and_resize(self.m);
        self.edges_visited = 0;
        self.phases.clear();
        self.current = None;
        self.steps = 0;
    }

    #[inline]
    fn on_step(&mut self, _t: u64, step: &Step) {
        self.steps += 1;
        if let Some(e) = step.edge {
            if self.edge_seen.test_and_set(e) {
                self.edges_visited += 1;
            }
        }
        match self.current.as_mut() {
            Some(phase) if phase.kind == step.kind => {
                phase.length += 1;
                phase.end_vertex = step.to;
            }
            _ => {
                if let Some(done) = self.current.take() {
                    self.phases.push(done);
                }
                self.current = Some(Phase {
                    kind: step.kind,
                    start_vertex: step.from,
                    end_vertex: step.to,
                    length: 1,
                });
            }
        }
    }

    fn satisfied(&self) -> bool {
        self.edges_visited == self.m
    }

    /// Drains the accumulated phases instead of cloning them (the trace
    /// can hold tens of thousands of phases on paper-scale odd-degree
    /// graphs); re-arm with [`Observer::begin`] before reuse, or use
    /// [`PhaseObserver::trace`] for a non-consuming snapshot.
    fn finish(&mut self) -> Metrics {
        let mut phases = std::mem::take(&mut self.phases);
        if let Some(cur) = self.current.take() {
            phases.push(cur);
        }
        Metrics::Phases(PhaseTrace {
            phases,
            steps: self.steps,
        })
    }
}

/// Tracks isolated blue star formation over a whole run — the §5 census
/// behind the `n/8` prediction for random 3-regular graphs — from the
/// step stream alone (its own visited bitmaps and blue degrees), so it
/// composes with any walk in one pass. Event-driven: consuming the edge
/// `{a, b}` can only complete stars centred at unvisited blue-neighbours
/// of `a` or `b`, an `O(Δ²)` check per step.
///
/// Satisfied at vertex cover, matching the legacy
/// [`crate::blue::track_isolated_stars`] run length.
#[derive(Debug, Clone)]
pub struct BlueCensusObserver<'g> {
    g: &'g Graph,
    vertex_seen: BitSet,
    edge_seen: BitSet,
    blue_deg: Vec<usize>,
    is_star: BitSet,
    ever: Vec<Vertex>,
    remaining: usize,
    steps_to_vertex_cover: Option<u64>,
}

impl<'g> BlueCensusObserver<'g> {
    /// Creates an unarmed observer bound to `g` (the census needs
    /// adjacency access on every star check).
    pub fn new(g: &'g Graph) -> BlueCensusObserver<'g> {
        BlueCensusObserver {
            g,
            vertex_seen: BitSet::new(),
            edge_seen: BitSet::new(),
            blue_deg: Vec::new(),
            is_star: BitSet::new(),
            ever: Vec::new(),
            remaining: 0,
            steps_to_vertex_cover: None,
        }
    }

    /// `true` if the blue component around the unvisited vertex `v` is
    /// exactly its star.
    fn is_isolated_star_at(&self, v: Vertex) -> bool {
        for (_, w, e) in self.g.ports(v) {
            if self.edge_seen.get(e) {
                return false;
            }
            let w_blue_to_v = self
                .g
                .ports(w)
                .filter(|&(_, t, f)| !self.edge_seen.get(f) && t == v)
                .count();
            if self.blue_deg[w] != w_blue_to_v {
                return false;
            }
        }
        true
    }
}

impl Observer for BlueCensusObserver<'_> {
    fn begin(&mut self, g: &Graph, start: Vertex) {
        debug_assert!(
            std::ptr::eq(self.g, g),
            "BlueCensusObserver armed on a different graph"
        );
        let n = self.g.n();
        self.vertex_seen.clear_and_resize(n);
        self.edge_seen.clear_and_resize(self.g.m());
        self.blue_deg.clear();
        self.blue_deg
            .extend(self.g.vertices().map(|v| self.g.degree(v)));
        self.is_star.clear_and_resize(n);
        self.ever.clear();
        self.vertex_seen.set(start);
        self.remaining = n - 1;
        self.steps_to_vertex_cover = if self.remaining == 0 { Some(0) } else { None };
    }

    fn on_step(&mut self, t: u64, step: &Step) {
        if self.vertex_seen.test_and_set(step.to) {
            self.remaining -= 1;
            if self.remaining == 0 {
                self.steps_to_vertex_cover = Some(t);
            }
        }
        let Some(e) = step.edge else { return };
        if self.edge_seen.get(e) {
            return;
        }
        // A blue edge was consumed: update the blue subgraph and check the
        // only vertices whose star status can have changed.
        self.edge_seen.set(e);
        let (a, b) = self.g.endpoints(e);
        self.blue_deg[a] -= 1;
        self.blue_deg[b] -= 1;
        for end in [a, b] {
            for (_, cand, f) in self.g.ports(end) {
                if self.edge_seen.get(f) || self.vertex_seen.get(cand) || self.is_star.get(cand) {
                    continue;
                }
                if self.is_isolated_star_at(cand) {
                    self.is_star.set(cand);
                    self.ever.push(cand);
                }
            }
        }
    }

    fn satisfied(&self) -> bool {
        self.steps_to_vertex_cover.is_some()
    }

    fn finish(&mut self) -> Metrics {
        let mut ever = self.ever.clone();
        ever.sort_unstable();
        Metrics::BlueCensus(BlueCensusMetrics {
            ever_star_centers: ever,
            steps_to_vertex_cover: self.steps_to_vertex_cover,
        })
    }
}

/// Which vertex a [`HittingObserver`] waits for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitTarget {
    /// A fixed vertex id.
    Vertex(Vertex),
    /// The highest-numbered vertex, `n - 1` (a convenient canonical
    /// "far" vertex that exists on every non-empty graph).
    LastVertex,
}

/// Records the first-visit (hitting) time of one target vertex.
#[derive(Debug, Clone)]
pub struct HittingObserver {
    target_spec: HitTarget,
    target: Vertex,
    steps_to_hit: Option<u64>,
}

impl HittingObserver {
    /// Creates an unarmed observer; the concrete vertex is resolved at
    /// [`Observer::begin`].
    pub fn new(target: HitTarget) -> HittingObserver {
        HittingObserver {
            target_spec: target,
            target: 0,
            steps_to_hit: None,
        }
    }

    /// The measured hitting time, if the target was reached.
    pub fn steps_to_hit(&self) -> Option<u64> {
        self.steps_to_hit
    }
}

impl Observer for HittingObserver {
    fn begin(&mut self, g: &Graph, start: Vertex) {
        self.target = match self.target_spec {
            HitTarget::Vertex(v) => {
                assert!(v < g.n(), "hitting target {v} out of range");
                v
            }
            HitTarget::LastVertex => g.n() - 1,
        };
        self.steps_to_hit = if start == self.target { Some(0) } else { None };
    }

    #[inline]
    fn on_step(&mut self, t: u64, step: &Step) {
        if self.steps_to_hit.is_none() && step.to == self.target {
            self.steps_to_hit = Some(t);
        }
    }

    fn satisfied(&self) -> bool {
        self.steps_to_hit.is_some()
    }

    fn finish(&mut self) -> Metrics {
        Metrics::Hitting(HittingMetrics {
            target: self.target,
            steps_to_hit: self.steps_to_hit,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blue::track_isolated_stars;
    use crate::eprocess::rule::UniformRule;
    use crate::eprocess::EProcess;
    use crate::srw::SimpleRandomWalk;
    use eproc_graphs::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn one_walk_feeds_many_observers() {
        let g = generators::hypercube(4);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut walk = EProcess::new(&g, 0, UniformRule::new());
        let mut cover = CoverObserver::new(CoverTarget::Both);
        let mut blanket = BlanketObserver::new(0.3).unwrap();
        let mut phases = PhaseObserver::new();
        let mut census = BlueCensusObserver::new(&g);
        let mut hit = HittingObserver::new(HitTarget::LastVertex);
        let run = run_observed(
            &mut walk,
            &mut (&mut cover, &mut blanket, &mut phases, &mut census, &mut hit),
            StopWhen::AllSatisfied,
            10_000_000,
            &mut rng,
        );
        // The walk advanced exactly once per observed step.
        assert_eq!(walk.steps(), run.steps);
        let cm = cover.cover_metrics();
        assert_eq!(cm.vertices_visited, g.n());
        assert_eq!(cm.edges_visited, g.m());
        assert!(blanket.steps_to_blanket().unwrap() <= run.steps);
        assert_eq!(phases.trace().total_blue(), cm.blue_steps);
        assert!(hit.steps_to_hit().unwrap() <= cm.steps_to_vertex_cover.unwrap());
        assert!(matches!(census.finish(), Metrics::BlueCensus(_)));
    }

    #[test]
    fn observers_are_reusable_across_runs() {
        let g = generators::cycle(12);
        let mut cover = CoverObserver::new(CoverTarget::Vertices);
        for seed in 0..3 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut walk = EProcess::new(&g, 0, UniformRule::new());
            let run = run_observed(
                &mut walk,
                &mut (&mut cover,),
                StopWhen::AllSatisfied,
                1_000_000,
                &mut rng,
            );
            assert_eq!(run.steps, 11);
            assert_eq!(cover.cover_metrics().steps_to_vertex_cover, Some(11));
        }
    }

    #[test]
    fn stop_when_cap_runs_to_the_cap() {
        let g = generators::complete(6);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut walk = SimpleRandomWalk::new(&g, 0);
        let mut cover = CoverObserver::new(CoverTarget::Vertices);
        let run = run_observed(&mut walk, &mut (&mut cover,), StopWhen::Cap, 500, &mut rng);
        assert_eq!(run.steps, 500);
    }

    #[test]
    fn dyn_fallback_slice_works_through_the_generic_driver() {
        // The compatibility shape: a heterogeneous dyn-observer slice fed
        // to the same generic driver.
        let g = generators::torus2d(4, 4);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut walk = EProcess::new(&g, 0, UniformRule::new());
        let mut cover = CoverObserver::new(CoverTarget::Both);
        let mut phases = PhaseObserver::new();
        let mut observers: Vec<&mut dyn Observer> = vec![&mut cover, &mut phases];
        let run = run_observed(
            &mut walk,
            &mut observers,
            StopWhen::AllSatisfied,
            1_000_000,
            &mut rng,
        );
        assert_eq!(walk.steps(), run.steps);
        assert_eq!(cover.cover_metrics().edges_visited, g.m());
    }

    #[test]
    fn mono_and_dyn_drivers_agree_step_for_step() {
        let g = generators::torus2d(5, 5);
        for seed in 0..4 {
            let mut rng_a = SmallRng::seed_from_u64(seed);
            let mut walk_a = EProcess::new(&g, 0, UniformRule::new());
            let mut cover_a = CoverObserver::new(CoverTarget::Both);
            let run_a = run_observed(
                &mut walk_a,
                &mut (&mut cover_a,),
                StopWhen::AllSatisfied,
                1_000_000,
                &mut rng_a,
            );

            let mut rng_b = SmallRng::seed_from_u64(seed);
            let mut walk_b = EProcess::new(&g, 0, UniformRule::new());
            let mut cover_b = CoverObserver::new(CoverTarget::Both);
            let run_b = run_observed_dyn(
                &mut walk_b,
                &mut [&mut cover_b],
                StopWhen::AllSatisfied,
                1_000_000,
                &mut rng_b,
            );
            assert_eq!(run_a, run_b, "seed {seed}");
            assert_eq!(cover_a.cover_metrics(), cover_b.cover_metrics());
            assert_eq!(rng_a.next_u64(), rng_b.next_u64());
        }
    }

    #[test]
    fn completion_token_latches_and_counts() {
        let mut token = CompletionToken::arm(3);
        assert_eq!(token.unsatisfied(), 3);
        assert!(token.is_pending(1));
        token.complete(1);
        assert!(!token.is_pending(1));
        token.complete(1); // idempotent
        assert_eq!(token.unsatisfied(), 2);
        token.complete(0);
        token.complete(2);
        assert!(token.all_satisfied());
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn completion_token_rejects_oversized_sets() {
        let _ = CompletionToken::arm(CompletionToken::MAX_OBSERVERS + 1);
    }

    #[test]
    fn blanket_observer_rejects_bad_delta() {
        assert_eq!(
            BlanketObserver::new(1.5).unwrap_err(),
            CoverError::InvalidDelta(1.5)
        );
        assert!(BlanketObserver::new(0.0).is_err());
        assert!(BlanketObserver::new(0.5).is_ok());
    }

    #[test]
    fn census_observer_matches_walk_introspection() {
        // The observer reconstructs the blue subgraph from the step stream
        // alone; it must agree with the legacy routine that reads the
        // E-process internals, on the same trajectory (same seed).
        let mut seed_rng = SmallRng::seed_from_u64(7);
        let g = generators::connected_random_regular(300, 3, &mut seed_rng).unwrap();
        for seed in 0..3 {
            let mut rng_a = SmallRng::seed_from_u64(100 + seed);
            let mut walk_a = EProcess::new(&g, 0, UniformRule::new());
            let legacy = track_isolated_stars(&mut walk_a, 10_000_000, &mut rng_a);

            let mut rng_b = SmallRng::seed_from_u64(100 + seed);
            let mut walk_b = EProcess::new(&g, 0, UniformRule::new());
            let mut census = BlueCensusObserver::new(&g);
            let run = run_observed(
                &mut walk_b,
                &mut (&mut census,),
                StopWhen::AllSatisfied,
                10_000_000,
                &mut rng_b,
            );
            let Metrics::BlueCensus(m) = census.finish() else {
                unreachable!()
            };
            assert_eq!(m.ever_star_centers, legacy.ever_star_centers);
            assert_eq!(m.steps_to_vertex_cover, legacy.steps_to_vertex_cover);
            assert_eq!(run.steps, legacy.steps);
        }
    }

    #[test]
    fn hitting_observer_start_is_zero() {
        let g = generators::cycle(8);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut walk = SimpleRandomWalk::new(&g, 3);
        let mut hit = HittingObserver::new(HitTarget::Vertex(3));
        let run = run_observed(
            &mut walk,
            &mut (&mut hit,),
            StopWhen::AllSatisfied,
            1_000,
            &mut rng,
        );
        assert_eq!(run.steps, 0);
        assert_eq!(hit.steps_to_hit(), Some(0));
    }
}
