//! Parallel ensemble-simulation engine for the `eproc` workspace.
//!
//! The paper's claims — Theorem 1's `Θ(n)` cover time, the §5 star census,
//! the Theorem 5 lower bound — are statements about **ensembles** of runs
//! over (graph × process × seed) grids. This crate provides one shared
//! execution subsystem for all of them, replacing the hand-rolled
//! sequential trial loops of the `table_*` binaries:
//!
//! * [`spec`] — declarative experiment descriptions: a [`spec::GraphSpec`]
//!   grid (random regular, LPS Ramanujan, geometric, hypercube, torus, …),
//!   a [`spec::ProcessSpec`] grid (E-process rules, SRW variants,
//!   rotor-router, RWC(d), locally fair walks), trial counts, a
//!   [`spec::Target`] (vertex/edge cover or blanket time), and any number
//!   of extra [`spec::MetricSpec`]s;
//! * [`executor`] — a work-stealing thread-pool executor (scoped threads
//!   over a shared atomic job index) with deterministic per-trial seeding
//!   derived from [`eproc_stats::SeedSequence`], so aggregate results are
//!   **bit-identical regardless of thread count**;
//! * [`report`] — streaming aggregation into [`eproc_stats::OnlineStats`]
//!   summaries and mergeable [`eproc_stats::QuantileSketch`]es (p50/p90/p99
//!   columns by default, `--quantiles` to choose others) with plain-text
//!   table, CSV and JSON emitters, including dynamic per-metric columns;
//! * [`builtin`] — named specs reproducing the paper's headline tables
//!   (`comparison`, `theorem1`, `rules`, `phases`, …), consumed by both
//!   the `eproc` CLI binary and the thin `table_*` wrappers in
//!   `eproc-bench`.
//!
//! # Metrics & observers
//!
//! Every quantity the paper reports is a function of the same step
//! stream, so a trial wanting several metrics should not re-walk the
//! graph once per metric. A spec's `metrics` field attaches extra
//! [`eproc_core::observe::Observer`]s — cover times, blanket time, phase
//! structure, the §5 blue star census, hitting times — to the **same**
//! walk as the stopping target; the executor runs each
//! (graph × process × seed) trial exactly once and the trial continues
//! until the target *and* every metric have resolved (or the cap). On
//! the CLI this is `eproc run blanket --metrics cover,blanket:0.5,phases`.
//!
//! # Ensembles over graphs
//!
//! A [`spec::ResamplePlan`] (CLI `--resample [W]`, or a `~` marker in
//! the graph syntax: `regular:~1000,4`) switches a randomized family
//! from one shared sample to a fresh graph per group of `W` trials,
//! generated inside the worker pool from `(family, group)`-keyed seeds.
//! The report then decomposes every column's variance into pooled,
//! across-graph and within-graph components
//! ([`executor::VarianceSplit`]) — the shape of the paper's
//! whp-over-the-random-graph statements. The `cubicensemble` and
//! `odddegree` builtins replicate the related-work ensemble scenarios.
//!
//! # Scaling laws
//!
//! The paper's headline claim is a *growth rate* — `Θ(m)` cover time on
//! even-degree high-girth expanders versus `Θ(n log n)` for the SRW. The
//! [`scaling`] module turns a size-sweep report (one cell per size,
//! expanded from the `{start..end,step}` sweep grammar or the CLI's
//! `--sweep n=…` flag) into per-(process × series) growth-law fits:
//! [`eproc_stats::scaling`] fits `c·m`, `a+b·m` and `c·n ln n` and
//! selects by residual score, and [`report::scaling_table`] /
//! [`report::to_json_with_scaling`] render the verdict. Sweep cells run
//! through the resample executor's *(family, group)* blocks with
//! streamed per-block statistics, so large sweep points never
//! materialise per-trial vectors. On the CLI this is `eproc scale
//! scaling-even` (the paper's linear claim) and `eproc scale
//! scaling-srw` (the `n log n` contrast).
//!
//! # Observability
//!
//! [`executor::run_with_sink`] is [`executor::run`] plus telemetry: it
//! emits structured [`eproc_telemetry::Event`]s (`run_started`,
//! `graph_built`, `block_claimed`/`block_completed`,
//! `aggregation_merged`, `run_finished`) to any
//! [`eproc_telemetry::TelemetrySink`] as the run progresses. Telemetry
//! is a **pure observer**: events carry labels and integers measured
//! around the deterministic work, never feed back into it, so the
//! report stays byte-identical with any sink — or none
//! ([`eproc_telemetry::NullSink`], the disabled default `run` uses,
//! skips event construction and clock reads entirely). The `eproc` CLI
//! wires the stock sinks: `--progress` (live stderr status),
//! `--telemetry PATH` (strict-JSONL event log) and the
//! `<artifact>.telemetry.json` sidecar
//! ([`eproc_telemetry::SummarySink`]'s per-stage wall-time and
//! per-worker utilization roll-up).
//!
//! # Sharded execution
//!
//! A resampled run's *(family, group)* blocks are independent, so the
//! [`shard`] module can partition them across machines: `eproc run …
//! --shard i/k` ([`shard::run_shard`]) executes only the blocks whose
//! canonical index is `≡ i (mod k)` and persists their streamed
//! accumulators bit-exactly ([`shard::ShardReport`]); `eproc merge`
//! ([`shard::merge_shards`]) recombines the `k` artifacts — parallel
//! Welford merges in canonical block order, through the executor's own
//! aggregation code — into a report **byte-identical** to the unsharded
//! run's. Inside each block, groups of two or more same-cell trials are
//! dispatched through [`eproc_core::interleave::run_observed_interleaved`]
//! ([`executor::select_kernel_path`]), which overlaps the independent
//! trials' CSR row fetches without perturbing any per-trial stream.
//!
//! # Canonical specs and the artifact cache
//!
//! Every spelling of an experiment — a builtin name, expanded
//! `--graph`/`--process` flags, a shuffled grid — reduces to one
//! normal form: [`spec::ExperimentSpec::canonicalize`] sorts the
//! grids, materializes defaults, and derives the spec's name from its
//! content, so `parse(to_cli(canonicalize(s)))` is a fixed point
//! (property-tested). A [`digest::SpecDigest`] hashes the canonical
//! `to_cli()` line together with the base seed, quantile selection,
//! artifact kind and a format version — everything the artifact bytes
//! depend on and nothing they don't (thread count, sharding and
//! telemetry are all byte-invariant by construction). The [`cache`]
//! module keys a content-addressed artifact store by that digest; the
//! CLI's `--cache DIR` / `EPROC_CACHE` serves cache hits byte-identical
//! to the run that populated them. The [`cli`] module is the shared
//! flag-table parser behind both the `eproc` binary's subcommands and
//! the canonical spec-line grammar.
//!
//! # Fault tolerance
//!
//! [`recovery::run_recoverable`] makes resampled runs crash-safe.
//! Completed *(family, group)* blocks stream to an atomically-written
//! checkpoint ([`checkpoint::RunCheckpoint`], format `eproc-checkpoint`
//! v2, the same bit-exact codec as shard artifacts); SIGINT/SIGTERM
//! (via the `eproc-signal` latch), a caller-owned cancellation flag, or
//! a `--max-wall` deadline interrupt the run *gracefully* — in-flight
//! blocks drain, a final checkpoint lands, and the CLI exits with the
//! distinct "interrupted, resumable" code 75. `--resume` validates the
//! checkpoint against the spec, recomputes only the missing blocks, and
//! produces a report **byte-identical to an uninterrupted run at any
//! thread count**. Each block runs under `catch_unwind`
//! ([`executor::BlockError`]): a panicking worker is reported — naming
//! family, resample group and worker — without poisoning the pool, and
//! `--retry-blocks` re-runs failed blocks from the same derived seeds.
//! A deterministic [`fault::FaultPlan`] harness (`--inject-faults`,
//! `EPROC_FAULTS`; off by default at zero cost) drives the proptests
//! that pin all of these guarantees.
//!
//! # Example
//!
//! ```
//! use eproc_engine::executor::{run, RunOptions};
//! use eproc_engine::spec::{
//!     CapSpec, ExperimentSpec, GraphSpec, MetricSpec, ProcessSpec, RuleSpec, Target,
//! };
//!
//! let spec = ExperimentSpec {
//!     name: "demo".into(),
//!     description: "E-process vs SRW on a small torus".into(),
//!     graphs: vec![GraphSpec::Torus { w: 8, h: 8 }],
//!     processes: vec![
//!         ProcessSpec::EProcess { rule: RuleSpec::Uniform },
//!         ProcessSpec::Srw,
//!     ],
//!     trials: 4,
//!     target: Target::VertexCover,
//!     // One walk per trial also measures edge cover and phase structure.
//!     metrics: vec![MetricSpec::Cover, MetricSpec::Phases],
//!     start: 0,
//!     cap: CapSpec::Auto,
//!     resample: None,
//! };
//! let report = run(&spec, &RunOptions { threads: 2, base_seed: 7 }).unwrap();
//! assert_eq!(report.cells.len(), 2);
//! assert!(report.cells.iter().all(|c| c.completed == 4));
//! assert_eq!(report.cells[0].metrics.len(), 6); // c_v, c_e + 4 phase columns
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builtin;
pub mod cache;
pub mod checkpoint;
pub mod cli;
pub mod digest;
pub mod executor;
pub mod fault;
mod persist;
pub mod recovery;
pub mod report;
pub mod scaling;
pub mod shard;
pub mod spec;

pub use cache::{CacheEntry, CacheStore, CACHE_ENV};
pub use checkpoint::{CheckpointError, RunCheckpoint};
pub use digest::{spec_digest, ArtifactKind, SpecDigest};
pub use executor::{run, run_with_sink, BlockError, ExperimentReport, RunOptions};
pub use fault::{FaultKind, FaultPlan};
pub use recovery::{
    run_recoverable, run_recoverable_with_sink, CheckpointPlan, RecoveryError, RecoveryOptions,
    RunOutcome,
};
pub use scaling::{analyze, ScalingError, ScalingReport, SeriesFit};
pub use shard::{merge_shards, run_shard, run_shard_with_sink, ShardReport, ShardSpec};
pub use spec::{
    CapSpec, ExperimentSpec, GraphSpec, MetricSpec, ProcessSpec, ResamplePlan, RuleSpec, Scale,
    SweepRange, SweepStep, Target,
};
