//! The rotor-router (Propp machine) — a fully deterministic explorer.
//!
//! Related work in §1 of the paper: each vertex cycles through its ports in
//! a fixed order; cover time is `O(mD)` (Yanovski–Wagner–Bruckstein). The
//! E-process "can be seen as a hybrid between a rotor-router and a random
//! walk", so this is the deterministic endpoint of the comparison table.

use crate::process::{Step, StepKind, WalkProcess};
use eproc_graphs::{Graph, Vertex};
use rand::RngCore;

/// The rotor-router walk. Deterministic: `advance` ignores the RNG.
#[derive(Debug, Clone)]
pub struct RotorRouter<'g> {
    g: &'g Graph,
    current: Vertex,
    steps: u64,
    rotor: Vec<u32>,
}

impl<'g> RotorRouter<'g> {
    /// Creates a rotor-router at `start` with all rotors at port 0.
    ///
    /// # Panics
    ///
    /// Panics if `start >= g.n()`.
    pub fn new(g: &'g Graph, start: Vertex) -> RotorRouter<'g> {
        assert!(start < g.n(), "start vertex {start} out of range");
        RotorRouter {
            g,
            current: start,
            steps: 0,
            rotor: vec![0; g.n()],
        }
    }

    /// Current rotor position (next port index) of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= g.n()`.
    pub fn rotor_position(&self, v: Vertex) -> usize {
        self.rotor[v] as usize
    }
}

impl<'g> WalkProcess for RotorRouter<'g> {
    fn graph(&self) -> &Graph {
        self.g
    }

    fn current(&self) -> Vertex {
        self.current
    }

    fn steps(&self) -> u64 {
        self.steps
    }

    fn advance(&mut self, mut rng: &mut dyn RngCore) -> Step {
        self.advance_rng(&mut rng)
    }

    fn advance_rng<R: RngCore>(&mut self, _rng: &mut R) -> Step {
        let v = self.current;
        let d = self.g.degree(v);
        assert!(d > 0, "rotor-router stuck at isolated vertex {v}");
        let port = self.rotor[v] as usize;
        self.rotor[v] = ((port + 1) % d) as u32;
        let arc = self.g.arc_range(v).start + port;
        let to = self.g.arc_target(arc);
        self.current = to;
        self.steps += 1;
        Step {
            from: v,
            to,
            edge: Some(self.g.arc_edge(arc)),
            kind: StepKind::Red,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eproc_graphs::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn deterministic_regardless_of_rng() {
        let g = generators::torus2d(3, 3);
        let mut r1 = RotorRouter::new(&g, 0);
        let mut r2 = RotorRouter::new(&g, 0);
        let mut rng1 = SmallRng::seed_from_u64(1);
        let mut rng2 = SmallRng::seed_from_u64(999);
        for _ in 0..500 {
            assert_eq!(r1.advance(&mut rng1), r2.advance(&mut rng2));
        }
    }

    #[test]
    fn rotor_cycles_ports() {
        let g = generators::star(4); // center 0 has 3 ports
        let mut r = RotorRouter::new(&g, 0);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut targets = Vec::new();
        for _ in 0..6 {
            let s = r.advance(&mut rng); // from center to a leaf
            targets.push(s.to);
            let back = r.advance(&mut rng); // leaf always returns
            assert_eq!(back.to, 0);
        }
        assert_eq!(targets, vec![1, 2, 3, 1, 2, 3]);
    }

    #[test]
    fn covers_cycle_in_n_steps() {
        let g = generators::cycle(12);
        let mut r = RotorRouter::new(&g, 0);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = vec![false; g.n()];
        seen[0] = true;
        let mut t = 0u64;
        while seen.iter().any(|&s| !s) {
            let s = r.advance(&mut rng);
            seen[s.to] = true;
            t += 1;
            assert!(t < 10_000, "rotor must cover the cycle quickly");
        }
        // Port 0 everywhere walks around the cycle one way: exactly n-1.
        assert!(t <= 2 * g.n() as u64);
    }

    #[test]
    fn eventually_traverses_every_edge_in_both_directions() {
        // Classic rotor-router property: after stabilisation the walk is an
        // Eulerian circulation of the doubled digraph.
        let g = generators::complete(4);
        let mut r = RotorRouter::new(&g, 0);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut arc_used = vec![false; 2 * g.m()];
        for _ in 0..10 * 2 * g.m() {
            let before = r.current();
            let s = r.advance(&mut rng);
            // Locate the arc that was taken.
            let arc = g
                .arc_range(before)
                .find(|&a| g.arc_edge(a) == s.edge.unwrap() && g.arc_target(a) == s.to)
                .unwrap();
            arc_used[arc] = true;
        }
        assert!(
            arc_used.iter().all(|&u| u),
            "every arc is used in O(mD) steps"
        );
    }
}
