//! Shared bit-exact persistence for run artifacts.
//!
//! Shard artifacts (`--shard` / `eproc merge`) and run checkpoints
//! (`--checkpoint` / `--resume`) persist the same two things: the
//! canonical experiment header that identifies a `(spec, base_seed)`
//! run, and completed *(family, group)* blocks' streamed [`OnlineStats`]
//! and [`QuantileSketch`] accumulators. All of it must round-trip
//! **bit-exactly** — the `m2` sum of squares is not recoverable from a
//! rounded variance, the `±∞` sentinels of an empty accumulator have no
//! decimal form, and a sketch's retained items and coin-stream state
//! decide every future compaction — so floats are written as IEEE-754
//! bit patterns ([`OnlineStats::to_raw`], [`QuantileSketch::to_raw`])
//! and read back through a strict JSON parser that keeps numbers as raw
//! text (no lossy trip through `f64`).
//!
//! This module is that shared substrate: the strict reader
//! ([`json`]), the accumulator codecs ([`stats_to_json`] /
//! [`stats_from_json`], [`sketch_to_json`] / [`sketch_from_json`]), the
//! block-list codec, and [`RunHeader`] — the header both artifact kinds
//! embed, with field-by-field compatibility checking so "these
//! artifacts come from different runs" errors name the first
//! disagreeing field.

use crate::executor::{BlockAgg, ProcAgg};
use crate::report::json_escape;
use crate::spec::{ExperimentSpec, ResamplePlan, Target};
use eproc_stats::{OnlineStats, QuantileSketch, SketchRaw};
use std::fmt;
use std::fmt::Write as _;

/// A persistence-layer failure: malformed JSON, a missing or mistyped
/// field, or a value outside its domain. Artifact-level wrappers
/// ([`crate::shard::ShardError`], [`crate::checkpoint::CheckpointError`])
/// convert from this via `From`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct PersistError {
    message: String,
}

impl PersistError {
    pub(crate) fn new(message: impl Into<String>) -> PersistError {
        PersistError {
            message: message.into(),
        }
    }
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for PersistError {}

/// The canonical experiment header embedded in every persisted run
/// artifact: everything needed to (a) check that two artifacts describe
/// the same `(spec, base_seed)` run and (b) aggregate blocks without the
/// original spec in hand.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct RunHeader {
    /// Spec name.
    pub(crate) name: String,
    /// Spec description.
    pub(crate) description: String,
    /// Target measured.
    pub(crate) target: Target,
    /// Trials per cell.
    pub(crate) trials: usize,
    /// Base seed the blocks derived their streams from.
    pub(crate) base_seed: u64,
    /// Trials per resampled graph.
    pub(crate) walks_per_graph: usize,
    /// Resample groups per family.
    pub(crate) group_count: usize,
    /// `(label, family_label)` per graph family, in grid order.
    pub(crate) graphs: Vec<(String, String)>,
    /// Process labels, in grid order.
    pub(crate) processes: Vec<String>,
    /// Flattened metric column names.
    pub(crate) metric_columns: Vec<String>,
}

impl RunHeader {
    /// Builds the header a run of `(spec, base_seed)` under `plan` would
    /// persist.
    pub(crate) fn from_spec(
        spec: &ExperimentSpec,
        base_seed: u64,
        plan: ResamplePlan,
    ) -> RunHeader {
        RunHeader {
            name: spec.name.clone(),
            description: spec.description.clone(),
            target: spec.target,
            trials: spec.trials,
            base_seed,
            walks_per_graph: plan.walks_per_graph,
            group_count: plan.groups(spec.trials),
            graphs: spec
                .graphs
                .iter()
                .map(|gs| (gs.label(), gs.family_label()))
                .collect(),
            processes: spec.processes.iter().map(|ps| ps.label()).collect(),
            metric_columns: spec.metric_columns(),
        }
    }

    /// Total canonical block count: `families × groups`.
    pub(crate) fn total_blocks(&self) -> usize {
        self.graphs.len() * self.group_count
    }

    /// Names the first field on which `self` and `other` disagree, or
    /// `None` when the headers describe the same run.
    pub(crate) fn first_mismatch(&self, other: &RunHeader) -> Option<&'static str> {
        if self.name != other.name {
            return Some("experiment name");
        }
        if self.description != other.description {
            return Some("description");
        }
        if self.target != other.target {
            return Some("target");
        }
        if self.trials != other.trials {
            return Some("trials");
        }
        if self.base_seed != other.base_seed {
            return Some("base_seed");
        }
        if self.walks_per_graph != other.walks_per_graph {
            return Some("walks_per_graph");
        }
        if self.group_count != other.group_count {
            return Some("group count");
        }
        if self.graphs != other.graphs {
            return Some("graph grid");
        }
        if self.processes != other.processes {
            return Some("process grid");
        }
        if self.metric_columns != other.metric_columns {
            return Some("metric columns");
        }
        None
    }

    /// Appends the header's JSON fields (two-space indent, trailing
    /// commas) in the canonical artifact order — the exact bytes the
    /// pre-refactor shard writer emitted.
    pub(crate) fn write_fields(&self, out: &mut String) {
        let _ = writeln!(out, "  \"experiment\": \"{}\",", json_escape(&self.name));
        let _ = writeln!(
            out,
            "  \"description\": \"{}\",",
            json_escape(&self.description)
        );
        let _ = writeln!(
            out,
            "  \"target\": \"{}\",",
            json_escape(&self.target.to_cli())
        );
        let _ = writeln!(out, "  \"trials\": {},", self.trials);
        let _ = writeln!(out, "  \"base_seed\": {},", self.base_seed);
        let _ = writeln!(out, "  \"walks_per_graph\": {},", self.walks_per_graph);
        let _ = writeln!(out, "  \"groups\": {},", self.group_count);
        out.push_str("  \"graphs\": [");
        for (i, (label, family)) in self.graphs.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "    {{\"label\": \"{}\", \"family\": \"{}\"}}",
                json_escape(label),
                json_escape(family)
            );
        }
        out.push_str(if self.graphs.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"processes\": [");
        for (i, p) in self.processes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\"", json_escape(p));
        }
        out.push_str("],\n");
        out.push_str("  \"metric_columns\": [");
        for (i, c) in self.metric_columns.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\"", json_escape(c));
        }
        out.push_str("],\n");
    }

    /// Parses the header fields back out of a parsed artifact object.
    pub(crate) fn parse(root: &json::Obj<'_>) -> Result<RunHeader, PersistError> {
        let target_str = root.str_field("target")?;
        let target = Target::parse(&target_str)
            .map_err(|e| PersistError::new(format!("target field: {e}")))?;
        let graphs = root
            .arr_field("graphs")?
            .iter()
            .map(|v| {
                let obj = v.as_obj("graphs entry")?;
                Ok((obj.str_field("label")?, obj.str_field("family")?))
            })
            .collect::<Result<Vec<_>, PersistError>>()?;
        let processes = root
            .arr_field("processes")?
            .iter()
            .map(|v| v.as_str("processes entry"))
            .collect::<Result<Vec<_>, _>>()?;
        let metric_columns = root
            .arr_field("metric_columns")?
            .iter()
            .map(|v| v.as_str("metric_columns entry"))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(RunHeader {
            name: root.str_field("experiment")?,
            description: root.str_field("description")?,
            target,
            trials: root.usize_field("trials")?,
            base_seed: root.u64_field("base_seed")?,
            walks_per_graph: root.usize_field("walks_per_graph")?,
            group_count: root.usize_field("groups")?,
            graphs,
            processes,
            metric_columns,
        })
    }
}

// --- accumulator / block codecs -------------------------------------------

/// Renders one accumulator as its bit-exact raw form: `[count, mean_bits,
/// m2_bits, min_bits, max_bits]` with the floats as decimal `u64` bit
/// patterns.
pub(crate) fn stats_to_json(stats: &OnlineStats) -> String {
    let (count, bits) = stats.to_raw();
    format!(
        "[{count}, {}, {}, {}, {}]",
        bits[0], bits[1], bits[2], bits[3]
    )
}

/// Parses one [`stats_to_json`] array back into a bit-identical
/// accumulator.
pub(crate) fn stats_from_json(v: &json::Value) -> Result<OnlineStats, PersistError> {
    let arr = v.as_arr("stats accumulator")?;
    if arr.len() != 5 {
        return Err(PersistError::new(
            "stats accumulator is not a [count, mean, m2, min, max] bit array",
        ));
    }
    let count = arr[0].as_u64("stats count")?;
    let mut bits = [0u64; 4];
    for (i, slot) in bits.iter_mut().enumerate() {
        *slot = arr[i + 1].as_u64("stats bit pattern")?;
    }
    Ok(OnlineStats::from_raw(count, bits))
}

/// Renders one quantile sketch as its bit-exact raw form:
/// `[k, count, state, [level0_bits...], [level1_bits...], ...]` with the
/// retained items as decimal `u64` bit patterns in verbatim stored
/// order — the state that decides every future compaction, so a merged
/// or resumed run replays the identical coin stream.
pub(crate) fn sketch_to_json(sketch: &QuantileSketch) -> String {
    let raw = sketch.to_raw();
    let mut out = format!("[{}, {}, {}", raw.k, raw.count, raw.state);
    for level in &raw.levels {
        out.push_str(", [");
        for (i, bits) in level.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{bits}");
        }
        out.push(']');
    }
    out.push(']');
    out
}

/// Parses one [`sketch_to_json`] array back into a bit-identical
/// sketch.
pub(crate) fn sketch_from_json(v: &json::Value) -> Result<QuantileSketch, PersistError> {
    let arr = v.as_arr("quantile sketch")?;
    if arr.len() < 3 {
        return Err(PersistError::new(
            "quantile sketch is not a [k, count, state, levels...] array",
        ));
    }
    let k = arr[0].as_u64("sketch k")?;
    if k < 2 {
        return Err(PersistError::new(format!(
            "sketch capacity must be at least 2, got {k}"
        )));
    }
    let count = arr[1].as_u64("sketch count")?;
    let state = arr[2].as_u64("sketch state")?;
    let levels = arr[3..]
        .iter()
        .map(|level| {
            level
                .as_arr("sketch level")?
                .iter()
                .map(|bits| bits.as_u64("sketch item bit pattern"))
                .collect::<Result<Vec<_>, _>>()
        })
        .collect::<Result<Vec<_>, PersistError>>()?;
    Ok(QuantileSketch::from_raw(SketchRaw {
        k,
        count,
        state,
        levels,
    }))
}

/// Appends the `"rep_dims"` field: `(family, n, m)` triples of group-0
/// samples, in canonical (sorted) order.
pub(crate) fn write_rep_dims(out: &mut String, rep_dims: &[(usize, usize, usize)]) {
    out.push_str("  \"rep_dims\": [");
    for (i, (gi, n, m)) in rep_dims.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "[{gi}, {n}, {m}]");
    }
    out.push_str("],\n");
}

/// Parses a [`write_rep_dims`] field back.
pub(crate) fn parse_rep_dims(
    root: &json::Obj<'_>,
) -> Result<Vec<(usize, usize, usize)>, PersistError> {
    root.arr_field("rep_dims")?
        .iter()
        .map(|v| {
            let triple = v.as_arr("rep_dims entry")?;
            if triple.len() != 3 {
                return Err(PersistError::new(
                    "rep_dims entry is not a [gi, n, m] triple",
                ));
            }
            Ok((
                triple[0].as_usize("rep_dims gi")?,
                triple[1].as_usize("rep_dims n")?,
                triple[2].as_usize("rep_dims m")?,
            ))
        })
        .collect()
}

/// Appends the `"blocks"` field: every block's per-process streamed
/// accumulators, bit-exact, closing the JSON document (`]` + `}`).
pub(crate) fn write_blocks(out: &mut String, blocks: &[BlockAgg]) {
    out.push_str("  \"blocks\": [");
    for (i, block) in blocks.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        let _ = write!(out, "    {{\"block\": {}, \"procs\": [", block.block);
        for (pi, proc) in block.procs.iter().enumerate() {
            out.push_str(if pi == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "      {{\"completed\": {}, \"steps\": {}, \"steps_sketch\": {}, \"blue\": {}, \
                 \"metrics\": [",
                proc.completed,
                stats_to_json(&proc.steps),
                sketch_to_json(&proc.steps_sketch),
                stats_to_json(&proc.blue_fraction)
            );
            for (ci, acc) in proc.metrics.iter().enumerate() {
                if ci > 0 {
                    out.push_str(", ");
                }
                out.push_str(&stats_to_json(acc));
            }
            out.push_str("], \"metric_sketches\": [");
            for (ci, sk) in proc.metric_sketches.iter().enumerate() {
                if ci > 0 {
                    out.push_str(", ");
                }
                out.push_str(&sketch_to_json(sk));
            }
            out.push_str("]}");
        }
        out.push_str("\n    ]}");
    }
    out.push_str(if blocks.is_empty() { "]\n" } else { "\n  ]\n" });
    out.push_str("}\n");
}

/// Parses a [`write_blocks`] field back, bit-exactly.
pub(crate) fn parse_blocks(root: &json::Obj<'_>) -> Result<Vec<BlockAgg>, PersistError> {
    root.arr_field("blocks")?
        .iter()
        .map(|v| {
            let obj = v.as_obj("blocks entry")?;
            let procs = obj
                .arr_field("procs")?
                .iter()
                .map(|p| {
                    let proc = p.as_obj("procs entry")?;
                    Ok(ProcAgg {
                        completed: proc.usize_field("completed")?,
                        steps: stats_from_json(proc.field("steps")?)?,
                        steps_sketch: sketch_from_json(proc.field("steps_sketch")?)?,
                        blue_fraction: stats_from_json(proc.field("blue")?)?,
                        metrics: proc
                            .arr_field("metrics")?
                            .iter()
                            .map(stats_from_json)
                            .collect::<Result<Vec<_>, _>>()?,
                        metric_sketches: proc
                            .arr_field("metric_sketches")?
                            .iter()
                            .map(sketch_from_json)
                            .collect::<Result<Vec<_>, _>>()?,
                    })
                })
                .collect::<Result<Vec<_>, PersistError>>()?;
            Ok(BlockAgg {
                block: obj.usize_field("block")?,
                procs,
            })
        })
        .collect()
}

/// A minimal strict-JSON reader for run artifacts: recursive descent,
/// numbers kept as raw text so `u64` bit patterns round-trip without a
/// lossy trip through `f64`.
pub(crate) mod json {
    use super::PersistError;

    /// One parsed JSON value. Numbers stay as their raw source text.
    /// Run artifacts never carry booleans or nulls, so those parse to
    /// payload-less variants the accessors simply mistype.
    #[derive(Debug, Clone)]
    pub(crate) enum Value {
        Null,
        Bool,
        Num(String),
        Str(String),
        Arr(Vec<Value>),
        Obj(Vec<(String, Value)>),
    }

    /// An object's fields, with typed accessors that name the missing or
    /// mistyped field in their error.
    pub(crate) struct Obj<'a>(&'a [(String, Value)]);

    impl Value {
        pub(crate) fn as_obj(&self, what: &str) -> Result<Obj<'_>, PersistError> {
            match self {
                Value::Obj(fields) => Ok(Obj(fields)),
                _ => Err(PersistError::new(format!("{what}: expected an object"))),
            }
        }

        pub(crate) fn as_arr(&self, what: &str) -> Result<&[Value], PersistError> {
            match self {
                Value::Arr(items) => Ok(items),
                _ => Err(PersistError::new(format!("{what}: expected an array"))),
            }
        }

        pub(crate) fn as_str(&self, what: &str) -> Result<String, PersistError> {
            match self {
                Value::Str(s) => Ok(s.clone()),
                _ => Err(PersistError::new(format!("{what}: expected a string"))),
            }
        }

        pub(crate) fn as_u64(&self, what: &str) -> Result<u64, PersistError> {
            match self {
                Value::Num(raw) => raw
                    .parse()
                    .map_err(|_| PersistError::new(format!("{what}: {raw:?} is not a u64"))),
                _ => Err(PersistError::new(format!("{what}: expected a number"))),
            }
        }

        pub(crate) fn as_usize(&self, what: &str) -> Result<usize, PersistError> {
            self.as_u64(what).and_then(|v| {
                usize::try_from(v)
                    .map_err(|_| PersistError::new(format!("{what}: {v} overflows usize")))
            })
        }
    }

    impl<'a> Obj<'a> {
        pub(crate) fn field(&self, key: &str) -> Result<&'a Value, PersistError> {
            self.0
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| PersistError::new(format!("missing field {key:?}")))
        }

        pub(crate) fn str_field(&self, key: &str) -> Result<String, PersistError> {
            self.field(key)?.as_str(key)
        }

        pub(crate) fn u64_field(&self, key: &str) -> Result<u64, PersistError> {
            self.field(key)?.as_u64(key)
        }

        pub(crate) fn usize_field(&self, key: &str) -> Result<usize, PersistError> {
            self.field(key)?.as_usize(key)
        }

        pub(crate) fn arr_field(&self, key: &str) -> Result<&'a [Value], PersistError> {
            self.field(key)?.as_arr(key)
        }
    }

    /// Parses `text` as one JSON document (trailing whitespace only).
    pub(crate) fn parse(text: &str) -> Result<Value, PersistError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.fail("trailing content after the document"));
        }
        Ok(value)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn fail(&self, message: &str) -> PersistError {
            PersistError::new(format!("invalid JSON at byte {}: {message}", self.pos))
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn expect(&mut self, b: u8) -> Result<(), PersistError> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(self.fail(&format!("expected {:?}", b as char)))
            }
        }

        fn literal(&mut self, lit: &str, value: Value) -> Result<Value, PersistError> {
            if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
                self.pos += lit.len();
                Ok(value)
            } else {
                Err(self.fail(&format!("expected {lit}")))
            }
        }

        fn value(&mut self) -> Result<Value, PersistError> {
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b't') => self.literal("true", Value::Bool),
                Some(b'f') => self.literal("false", Value::Bool),
                Some(b'n') => self.literal("null", Value::Null),
                Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
                _ => Err(self.fail("expected a value")),
            }
        }

        fn object(&mut self) -> Result<Value, PersistError> {
            self.expect(b'{')?;
            let mut fields = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                let value = self.value()?;
                fields.push((key, value));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => return Err(self.fail("expected ',' or '}'")),
                }
            }
        }

        fn array(&mut self) -> Result<Value, PersistError> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(self.fail("expected ',' or ']'")),
                }
            }
        }

        fn string(&mut self) -> Result<String, PersistError> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err(self.fail("unterminated string")),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'u') => {
                                let hex = self
                                    .bytes
                                    .get(self.pos + 1..self.pos + 5)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .ok_or_else(|| self.fail("truncated \\u escape"))?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|_| self.fail("bad \\u escape"))?;
                                // Artifact strings never contain surrogate
                                // pairs (the writer escapes only control
                                // characters below 0x20); reject rather
                                // than decode them wrongly.
                                let c = char::from_u32(code)
                                    .ok_or_else(|| self.fail("\\u escape is not a scalar"))?;
                                out.push(c);
                                self.pos += 4;
                            }
                            _ => return Err(self.fail("bad escape")),
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        // Consume one full UTF-8 scalar from the source.
                        let rest = &self.bytes[self.pos..];
                        let s =
                            std::str::from_utf8(rest).map_err(|_| self.fail("invalid UTF-8"))?;
                        let c = s.chars().next().expect("non-empty by peek");
                        if (c as u32) < 0x20 {
                            return Err(self.fail("raw control character in string"));
                        }
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn number(&mut self) -> Result<Value, PersistError> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
            {
                self.pos += 1;
            }
            if self.pos == start {
                return Err(self.fail("expected a number"));
            }
            let raw = std::str::from_utf8(&self.bytes[start..self.pos])
                .expect("ASCII digits are UTF-8")
                .to_string();
            Ok(Value::Num(raw))
        }
    }
}
