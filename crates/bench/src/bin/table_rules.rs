//! **T-rules**: Theorem 1 is independent of rule `A` — "even if this
//! choice is decided on-line by an adversary".
//!
//! We run the E-process under every rule implementation (uniform,
//! first-port, last-port, round-robin, a degree-greedy adversary and a
//! malicious "always steer back where we came from" adversary) on
//! even-degree expanders; all cover in `Θ(n)`.

use eproc_bench::{mean_vertex_cover_steps, rng_for, save_table, Config};
use eproc_core::rule::{
    AdversarialRule, EdgeRule, FirstPortRule, GreedyAdversary, LastPortRule, RoundRobinRule,
    RuleContext, UniformRule,
};
use eproc_core::EProcess;
use eproc_graphs::{generators, Graph};
use eproc_stats::{SeedSequence, TextTable};

const REPS: usize = 5;

fn measure<A: EdgeRule>(
    g: &Graph,
    rule_factory: impl Fn() -> A,
    cap: u64,
    rng: &mut rand::rngs::SmallRng,
) -> f64 {
    let (mean, done) = mean_vertex_cover_steps(
        |_| EProcess::new(g, 0, rule_factory()),
        REPS,
        cap,
        rng,
    );
    assert_eq!(done, REPS, "all runs must cover");
    mean
}

fn main() {
    let config = Config::from_args();
    let seeds = SeedSequence::new(config.seed);
    println!("Rule independence (Theorem 1): CV(E)/n under different rules A\n");
    let mut table = TextTable::new(vec!["graph", "n", "rule", "CV mean", "CV/n"]);

    let reg_n = match config.scale {
        eproc_bench::Scale::Quick => 4_000,
        eproc_bench::Scale::Paper => 64_000,
    };
    let mut graph_rng = rng_for(seeds.derive(&[0]));
    let regular = generators::connected_random_regular(reg_n, 4, &mut graph_rng).unwrap();
    let lps = generators::lps_ramanujan(5, 13).unwrap();
    let graphs: Vec<(&str, &Graph)> =
        vec![("random 4-regular", &regular), ("LPS(5,13)", &lps)];

    for (name, g) in graphs {
        let n = g.n();
        let cap = (2_000.0 * n as f64 * (n as f64).ln()) as u64;
        let mut rows: Vec<(&str, f64)> = Vec::new();
        let mut rng = rng_for(seeds.derive(&[1, n as u64]));
        rows.push(("uniform", measure(g, UniformRule::new, cap, &mut rng)));
        rows.push(("first-port", measure(g, || FirstPortRule, cap, &mut rng)));
        rows.push(("last-port", measure(g, || LastPortRule, cap, &mut rng)));
        rows.push(("round-robin", measure(g, || RoundRobinRule::new(n), cap, &mut rng)));
        rows.push(("greedy-adversary", measure(g, || GreedyAdversary, cap, &mut rng)));
        // A spiteful adversary: always pick the live arc with the largest
        // id — tends to unbalance port consumption.
        rows.push((
            "spiteful-adversary",
            measure(
                g,
                || {
                    AdversarialRule::new(|ctx: &RuleContext<'_>| {
                        ctx.live_arcs
                            .iter()
                            .enumerate()
                            .max_by_key(|&(_, &a)| a)
                            .map(|(i, _)| i)
                            .expect("nonempty")
                    })
                },
                cap,
                &mut rng,
            ),
        ));
        for (rule, mean) in rows {
            table.push_row(vec![
                name.into(),
                n.to_string(),
                rule.into(),
                format!("{mean:.0}"),
                format!("{:.2}", mean / n as f64),
            ]);
        }
    }
    println!("{table}");
    let p = save_table("table_rules", &table).expect("write csv");
    println!("csv: {}", p.display());
}
